//! Layer shape parameters (Table I of the paper) and derived exact counts.
//!
//! All energy results in the paper are driven by *exact* read/write counts
//! computed from the layer shape, so this module is the single source of
//! truth for operation and data-volume arithmetic.

use crate::error::ShapeError;

/// The kind of a CNN layer, following Section III-A of the paper.
///
/// NORM layers are intentionally unsupported ("we believe support for the
/// NORM layer can be omitted due to its reduced usage in recent CNNs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// High-dimensional convolution (Eq. (1)).
    Conv,
    /// Fully-connected layer: a CONV layer with `H = R`, `E = 1`, `U = 1`.
    FullyConnected,
    /// Max-pooling layer: Eq. (1) with MAC replaced by MAX and
    /// `N = M = C = 1` per plane (Section V-D).
    Pool,
}

impl LayerKind {
    /// Short display name used in reports.
    pub fn label(self) -> &'static str {
        match self {
            LayerKind::Conv => "CONV",
            LayerKind::FullyConnected => "FC",
            LayerKind::Pool => "POOL",
        }
    }
}

/// Shape parameters of a CONV/FC layer (Table I).
///
/// Batch size `N` is *not* part of the shape: the paper sweeps it as an
/// experiment parameter, so all derived counts take `n` as an argument.
///
/// Square planes are assumed, as in the paper: the ifmap is `H x H`, the
/// filter `R x R` and the ofmap `E x E`.
///
/// # Example
///
/// ```
/// use eyeriss_nn::LayerShape;
///
/// // AlexNet CONV3: 13x13 ofmap, 3x3 filters, 256 -> 384 channels.
/// let s = LayerShape::conv(384, 256, 15, 3, 1)?;
/// assert_eq!(s.e, 13);
/// assert_eq!(s.macs(1), 384 * 256 * 3 * 3 * 13 * 13);
/// # Ok::<(), eyeriss_nn::ShapeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerShape {
    /// Layer kind (CONV, FC or POOL).
    pub kind: LayerKind,
    /// Number of 3-D filters / ofmap channels (`M`).
    pub m: usize,
    /// Number of ifmap/filter channels (`C`).
    pub c: usize,
    /// Padded ifmap plane width/height (`H`).
    pub h: usize,
    /// Filter plane width/height (`R`).
    pub r: usize,
    /// Ofmap plane width/height (`E`), derived as `(H - R + U) / U`.
    pub e: usize,
    /// Convolution stride (`U`).
    pub u: usize,
    /// Number of convolution groups (`G`); `1` for an ordinary dense layer.
    ///
    /// Grouped convolution splits the layer into `G` independent
    /// convolutions: filter `f` only sees input channels
    /// `(f / (M/G))·C .. (f / (M/G) + 1)·C`. Under this convention `c` is
    /// the *per-group* channel count and `m` the *total* filter count, so
    /// every per-group derived count (`macs`, `filter_words`,
    /// `ofmap_words`, `accumulations_per_ofmap`) keeps its Table I formula
    /// unchanged; only the ifmap volume scales by `G` (see
    /// [`LayerShape::in_channels`]). Depthwise convolution is the extreme
    /// `G = C_total`, `c = 1` case.
    pub groups: usize,
}

impl LayerShape {
    /// Creates a CONV layer shape, deriving and validating `E`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if any dimension is zero, the filter is larger
    /// than the ifmap, or the stride does not evenly tile the ifmap
    /// (`(H - R) % U != 0`).
    pub fn conv(m: usize, c: usize, h: usize, r: usize, u: usize) -> Result<Self, ShapeError> {
        if m == 0 || c == 0 || h == 0 || r == 0 || u == 0 {
            return Err(ShapeError::new("layer dimensions must be non-zero"));
        }
        if r > h {
            return Err(ShapeError::new(format!(
                "filter size {r} exceeds ifmap size {h}"
            )));
        }
        if !(h - r).is_multiple_of(u) {
            return Err(ShapeError::new(format!(
                "stride {u} does not evenly tile ifmap {h} with filter {r}"
            )));
        }
        let e = (h - r) / u + 1;
        Ok(LayerShape {
            kind: LayerKind::Conv,
            m,
            c,
            h,
            r,
            e,
            u,
            groups: 1,
        })
    }

    /// Creates a grouped CONV layer shape: `groups` independent
    /// convolutions, each with `c` input channels and `m / groups` filters.
    ///
    /// `c` is the *per-group* channel count; the layer's full ifmap has
    /// `c · groups` channels (see [`LayerShape::in_channels`]).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] under the [`LayerShape::conv`] conditions,
    /// when `groups` is zero, or when `groups` does not divide `m`.
    ///
    /// # Example
    ///
    /// ```
    /// use eyeriss_nn::LayerShape;
    ///
    /// // MobileNet dw3x3: 32 planes filtered independently.
    /// let dw = LayerShape::conv_grouped(32, 1, 114, 3, 1, 32)?;
    /// assert_eq!(dw.in_channels(), 32);
    /// assert_eq!(dw.filters_per_group(), 1);
    /// # Ok::<(), eyeriss_nn::ShapeError>(())
    /// ```
    pub fn conv_grouped(
        m: usize,
        c: usize,
        h: usize,
        r: usize,
        u: usize,
        groups: usize,
    ) -> Result<Self, ShapeError> {
        if groups == 0 {
            return Err(ShapeError::new("group count must be non-zero"));
        }
        if !m.is_multiple_of(groups) {
            return Err(ShapeError::new(format!(
                "group count {groups} does not divide filter count {m}"
            )));
        }
        Ok(LayerShape {
            groups,
            ..LayerShape::conv(m, c, h, r, u)?
        })
    }

    /// Creates a depthwise CONV layer shape: `channels` planes, each
    /// filtered independently by one `r x r` filter (`G = M = C_total`,
    /// per-group `c = 1`).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] under the [`LayerShape::conv`] conditions.
    pub fn depthwise(channels: usize, h: usize, r: usize, u: usize) -> Result<Self, ShapeError> {
        LayerShape::conv_grouped(channels, 1, h, r, u, channels)
    }

    /// Creates a fully-connected layer shape.
    ///
    /// FC layers are CONV layers with `H = R`, so a single spatial ifmap size
    /// is taken; `E = 1` and `U = 1` follow automatically.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if any dimension is zero.
    ///
    /// # Example
    ///
    /// ```
    /// use eyeriss_nn::LayerShape;
    /// let fc = LayerShape::fully_connected(4096, 256, 6)?;
    /// assert_eq!(fc.e, 1);
    /// assert_eq!(fc.h, fc.r);
    /// # Ok::<(), eyeriss_nn::ShapeError>(())
    /// ```
    pub fn fully_connected(m: usize, c: usize, h: usize) -> Result<Self, ShapeError> {
        if m == 0 || c == 0 || h == 0 {
            return Err(ShapeError::new("layer dimensions must be non-zero"));
        }
        Ok(LayerShape {
            kind: LayerKind::FullyConnected,
            m,
            c,
            h,
            r: h,
            e: 1,
            u: 1,
            groups: 1,
        })
    }

    /// Creates a max-pooling layer shape over `c` independent planes.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] under the same conditions as [`LayerShape::conv`].
    pub fn pool(c: usize, h: usize, r: usize, u: usize) -> Result<Self, ShapeError> {
        let conv = LayerShape::conv(1, c, h, r, u)?;
        Ok(LayerShape {
            kind: LayerKind::Pool,
            ..conv
        })
    }

    // ----- exact derived counts -------------------------------------------

    /// Total MAC operations for batch size `n`: `N·M·C·R²·E²` (Eq. (1)).
    pub fn macs(&self, n: usize) -> u64 {
        n as u64
            * self.m as u64
            * self.c as u64
            * (self.r * self.r) as u64
            * (self.e * self.e) as u64
    }

    /// Number of filter weight words: `M·C·R²`.
    pub fn filter_words(&self) -> u64 {
        self.m as u64 * self.c as u64 * (self.r * self.r) as u64
    }

    /// Number of ifmap words for batch size `n`: `N·G·C·H²` (the full
    /// ifmap spans all groups; `G = 1` recovers Table I's `N·C·H²`).
    pub fn ifmap_words(&self, n: usize) -> u64 {
        n as u64 * self.in_channels() as u64 * (self.h * self.h) as u64
    }

    /// Total input channels of the layer: `G·C` (equals `c` when dense).
    pub fn in_channels(&self) -> usize {
        self.c * self.groups
    }

    /// Filters per group: `M / G` (equals `m` when dense).
    pub fn filters_per_group(&self) -> usize {
        self.m / self.groups
    }

    /// The shape of one group of a grouped layer: `M / G` filters over `C`
    /// channels, `groups = 1`. Identity for dense layers.
    ///
    /// Grouped execution and mapping both decompose into `G` runs of this
    /// per-group shape, so it is the unit mapping searches operate on.
    pub fn per_group(&self) -> LayerShape {
        LayerShape {
            m: self.filters_per_group(),
            groups: 1,
            ..*self
        }
    }

    /// Number of ofmap words for batch size `n`: `N·M·E²`.
    pub fn ofmap_words(&self, n: usize) -> u64 {
        n as u64 * self.m as u64 * (self.e * self.e) as u64
    }

    /// Times each filter weight is used per batch of `n`: `N·E²`.
    ///
    /// This is the total reuse the dataflows split into `(a, b, c, d)`.
    pub fn uses_per_weight(&self, n: usize) -> u64 {
        n as u64 * (self.e * self.e) as u64
    }

    /// Average times each ifmap value feeds a MAC: `MACs / (N·C·H²)`.
    ///
    /// Exact in aggregate; border pixels individually see fewer uses.
    pub fn avg_uses_per_ifmap(&self, n: usize) -> f64 {
        self.macs(n) as f64 / self.ifmap_words(n) as f64
    }

    /// Partial sums reduced into one ofmap value: `C·R²` (Section III-B).
    pub fn accumulations_per_ofmap(&self) -> u64 {
        self.c as u64 * (self.r * self.r) as u64
    }

    /// Number of ifmap rows an `e_strip`-row ofmap strip needs:
    /// `(e_strip - 1)·U + R` (halo included).
    ///
    /// # Panics
    ///
    /// Panics if `e_strip` is zero or exceeds `E`.
    pub fn ifmap_rows_for_strip(&self, e_strip: usize) -> usize {
        assert!(
            e_strip >= 1 && e_strip <= self.e,
            "strip height {e_strip} outside 1..={}",
            self.e
        );
        (e_strip - 1) * self.u + self.r
    }

    /// Ratio of ifmap rows fetched when the plane is processed in
    /// `ceil(E / e_strip)` strips, relative to fetching each row once.
    ///
    /// Strips overlap by `R - U` rows, so the total rows touched are
    /// `sum over strips of ((rows of strip - 1)·U + R)`, clamped to `H` for
    /// the final partial strip.
    pub fn strip_refetch_factor(&self, e_strip: usize) -> f64 {
        let mut rows = 0usize;
        let mut remaining = self.e;
        while remaining > 0 {
            let s = remaining.min(e_strip);
            rows += self.ifmap_rows_for_strip(s);
            remaining -= s;
        }
        rows as f64 / self.h as f64
    }

    /// True when this shape follows the FC constraints (`H = R`, `E = 1`).
    pub fn is_fc_shaped(&self) -> bool {
        self.h == self.r && self.e == 1 && self.u == 1
    }
}

/// A named layer: shape plus a human-readable identifier like `"CONV1"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NamedLayer {
    /// Display name used in tables (e.g. `"CONV3"`).
    pub name: String,
    /// The layer shape.
    pub shape: LayerShape,
}

impl NamedLayer {
    /// Creates a named layer.
    pub fn new(name: impl Into<String>, shape: LayerShape) -> Self {
        NamedLayer {
            name: name.into(),
            shape,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conv_derives_e() {
        let s = LayerShape::conv(96, 3, 227, 11, 4).unwrap();
        assert_eq!(s.e, 55);
    }

    #[test]
    fn conv_rejects_zero_dims() {
        assert!(LayerShape::conv(0, 3, 227, 11, 4).is_err());
        assert!(LayerShape::conv(96, 3, 227, 11, 0).is_err());
    }

    #[test]
    fn conv_rejects_uneven_stride() {
        assert!(LayerShape::conv(1, 1, 12, 5, 4).is_err());
    }

    #[test]
    fn conv_rejects_oversized_filter() {
        assert!(LayerShape::conv(1, 1, 3, 5, 1).is_err());
    }

    #[test]
    fn fc_is_fc_shaped() {
        let fc = LayerShape::fully_connected(1000, 4096, 1).unwrap();
        assert!(fc.is_fc_shaped());
        assert_eq!(fc.macs(1), 1000 * 4096);
    }

    #[test]
    fn counts_match_hand_calc() {
        // CONV2 of AlexNet: M=256, C=48, H=31, R=5, U=1 -> E=27.
        let s = LayerShape::conv(256, 48, 31, 5, 1).unwrap();
        assert_eq!(s.e, 27);
        assert_eq!(s.macs(1), 256 * 48 * 25 * 729);
        assert_eq!(s.filter_words(), 256 * 48 * 25);
        assert_eq!(s.ifmap_words(2), 2 * 48 * 31 * 31);
        assert_eq!(s.ofmap_words(1), 256 * 729);
        assert_eq!(s.uses_per_weight(16), 16 * 729);
        assert_eq!(s.accumulations_per_ofmap(), 48 * 25);
    }

    #[test]
    fn grouped_conv_counts() {
        // AlexNet CONV2 as trained: two towers of 128 filters over 24
        // channels each (Table II merges them into one dense 256x48 layer).
        let s = LayerShape::conv_grouped(256, 24, 31, 5, 1, 2).unwrap();
        assert_eq!(s.in_channels(), 48);
        assert_eq!(s.filters_per_group(), 128);
        assert_eq!(s.ifmap_words(1), 48 * 31 * 31);
        // Per-group formulas are unchanged: each filter still sees C=24.
        assert_eq!(s.macs(1), 256 * 24 * 25 * 729);
        assert_eq!(s.filter_words(), 256 * 24 * 25);
        assert_eq!(s.accumulations_per_ofmap(), 24 * 25);
        let per = s.per_group();
        assert_eq!((per.m, per.c, per.groups), (128, 24, 1));
        assert_eq!(per.macs(2) * 2, s.macs(2));
    }

    #[test]
    fn depthwise_is_extreme_grouping() {
        let dw = LayerShape::depthwise(32, 114, 3, 1).unwrap();
        assert_eq!((dw.m, dw.c, dw.groups), (32, 1, 32));
        assert_eq!(dw.in_channels(), 32);
        assert_eq!(dw.macs(1), 32 * 9 * 112 * 112);
        assert_eq!(dw.per_group().m, 1);
    }

    #[test]
    fn grouped_conv_rejects_bad_groups() {
        assert!(LayerShape::conv_grouped(6, 2, 9, 3, 1, 0).is_err());
        assert!(LayerShape::conv_grouped(6, 2, 9, 3, 1, 4).is_err());
    }

    #[test]
    fn dense_layers_have_one_group() {
        assert_eq!(LayerShape::conv(4, 3, 9, 3, 1).unwrap().groups, 1);
        assert_eq!(LayerShape::fully_connected(4, 3, 2).unwrap().groups, 1);
        assert_eq!(LayerShape::pool(3, 9, 3, 3).unwrap().groups, 1);
    }

    #[test]
    fn strip_rows_include_halo() {
        let s = LayerShape::conv(1, 1, 31, 5, 1).unwrap();
        assert_eq!(s.ifmap_rows_for_strip(1), 5);
        assert_eq!(s.ifmap_rows_for_strip(27), 31);
    }

    #[test]
    fn full_plane_strip_has_no_refetch() {
        let s = LayerShape::conv(1, 1, 31, 5, 1).unwrap();
        assert!((s.strip_refetch_factor(s.e) - 1.0).abs() < 1e-12);
        // Strips of 1 row refetch heavily: 27 strips x 5 rows / 31 rows.
        assert!(s.strip_refetch_factor(1) > 4.0);
    }

    #[test]
    #[should_panic(expected = "strip height")]
    fn strip_zero_panics() {
        let s = LayerShape::conv(1, 1, 31, 5, 1).unwrap();
        s.ifmap_rows_for_strip(0);
    }

    proptest! {
        #[test]
        fn prop_e_consistent(h in 1usize..64, r in 1usize..12, u in 1usize..5,
                             m in 1usize..8, c in 1usize..8) {
            prop_assume!(r <= h && (h - r) % u == 0);
            let s = LayerShape::conv(m, c, h, r, u).unwrap();
            prop_assert_eq!((s.e - 1) * u + r, h);
        }

        #[test]
        fn prop_macs_equal_ifmap_uses(h in 4usize..40, r in 1usize..6,
                                      m in 1usize..6, c in 1usize..6,
                                      n in 1usize..4) {
            prop_assume!(r <= h);
            let s = LayerShape::conv(m, c, h, r, 1).unwrap();
            // Aggregate identity: MACs = ifmap words x average uses.
            let lhs = s.macs(n) as f64;
            let rhs = s.ifmap_words(n) as f64 * s.avg_uses_per_ifmap(n);
            prop_assert!((lhs - rhs).abs() / lhs < 1e-9);
        }

        #[test]
        fn prop_strip_factor_at_least_one(h in 6usize..50, r in 1usize..6,
                                          strip in 1usize..40) {
            prop_assume!(r <= h);
            let s = LayerShape::conv(1, 1, h, r, 1).unwrap();
            let strip = strip.min(s.e).max(1);
            prop_assert!(s.strip_refetch_factor(strip) >= 1.0 - 1e-12);
        }
    }
}
