//! The shared workload vocabulary of the `Engine` façade.
//!
//! Every execution tier speaks the same two nouns:
//!
//! * [`LayerProblem`] — one layer shape at one batch size, the unit the
//!   mapping optimizer, the cluster planner and the serving plan cache
//!   all key on.
//! * [`Workload`] — an ordered, named list of layer problems (a network's
//!   weighted stages, a figure's layer sweep, a tenant's traffic mix).
//!
//! Keeping batch size *next to* the shape — instead of threading a bare
//! `usize` through every call — is what lets plans, caches and
//! serialized artifacts agree on problem identity.

use crate::network::Network;
use crate::shape::{LayerKind, LayerShape, NamedLayer};

/// One layer shape at one batch size: the unit of mapping optimization.
///
/// # Example
///
/// ```
/// use eyeriss_nn::{LayerProblem, LayerShape};
///
/// let conv3 = LayerShape::conv(384, 256, 15, 3, 1)?;
/// let p = LayerProblem::new(conv3, 16);
/// assert_eq!(p.macs(), conv3.macs(16));
/// # Ok::<(), eyeriss_nn::ShapeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerProblem {
    /// The layer shape.
    pub shape: LayerShape,
    /// The batch size (`N`).
    pub batch: usize,
}

impl LayerProblem {
    /// Creates a layer problem.
    pub fn new(shape: LayerShape, batch: usize) -> Self {
        LayerProblem { shape, batch }
    }

    /// Total MAC operations of this problem.
    pub fn macs(&self) -> u64 {
        self.shape.macs(self.batch)
    }

    /// True when this is a weighted (CONV/FC) problem the mapping
    /// optimizer applies to; POOL stages are executed directly.
    pub fn is_weighted(&self) -> bool {
        matches!(self.shape.kind, LayerKind::Conv | LayerKind::FullyConnected)
    }

    /// Convolution group count of the underlying shape (`1` when dense).
    ///
    /// Grouped problems decompose into `groups` independent per-group
    /// problems; see [`LayerShape::per_group`].
    pub fn groups(&self) -> usize {
        self.shape.groups
    }

    /// The per-group problem of a grouped layer (identity when dense).
    pub fn per_group(&self) -> LayerProblem {
        LayerProblem::new(self.shape.per_group(), self.batch)
    }
}

impl From<(LayerShape, usize)> for LayerProblem {
    fn from((shape, batch): (LayerShape, usize)) -> Self {
        LayerProblem::new(shape, batch)
    }
}

/// An ordered, named list of [`LayerProblem`]s.
///
/// # Example
///
/// ```
/// use eyeriss_nn::{alexnet, Workload};
///
/// let w = Workload::from_layers("alexnet-conv", &alexnet::conv_layers(), 16);
/// assert_eq!(w.len(), 5);
/// assert_eq!(w.problems()[0].0, "CONV1");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    name: String,
    problems: Vec<(String, LayerProblem)>,
}

impl Workload {
    /// Creates an empty workload.
    pub fn new(name: impl Into<String>) -> Self {
        Workload {
            name: name.into(),
            problems: Vec::new(),
        }
    }

    /// Builds a workload from named layers at one batch size.
    pub fn from_layers(name: impl Into<String>, layers: &[NamedLayer], batch: usize) -> Self {
        let mut w = Workload::new(name);
        for layer in layers {
            w.push(layer.name.clone(), LayerProblem::new(layer.shape, batch));
        }
        w
    }

    /// Builds a workload from a network's *weighted* stages (CONV/FC) at
    /// one batch size. POOL stages carry no mapping problem and are
    /// skipped.
    pub fn from_network(name: impl Into<String>, net: &Network, batch: usize) -> Self {
        let mut w = Workload::new(name);
        for stage in net.stages() {
            let p = LayerProblem::new(stage.shape, batch);
            if p.is_weighted() {
                w.push(stage.name.clone(), p);
            }
        }
        w
    }

    /// Appends one named problem.
    pub fn push(&mut self, name: impl Into<String>, problem: LayerProblem) {
        self.problems.push((name.into(), problem));
    }

    /// The workload's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The named problems, in order.
    pub fn problems(&self) -> &[(String, LayerProblem)] {
        &self.problems
    }

    /// Number of problems.
    pub fn len(&self) -> usize {
        self.problems.len()
    }

    /// True when the workload holds no problems.
    pub fn is_empty(&self) -> bool {
        self.problems.is_empty()
    }

    /// Total MACs across every problem.
    pub fn total_macs(&self) -> u64 {
        self.problems.iter().map(|(_, p)| p.macs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alexnet;
    use crate::network::NetworkBuilder;

    #[test]
    fn problem_identity_is_shape_plus_batch() {
        let s = LayerShape::conv(4, 3, 9, 3, 1).unwrap();
        let a = LayerProblem::new(s, 2);
        let b: LayerProblem = (s, 2).into();
        assert_eq!(a, b);
        assert_ne!(a, LayerProblem::new(s, 4));
        assert!(a.is_weighted());
        assert!(!LayerProblem::new(LayerShape::pool(3, 9, 3, 3).unwrap(), 2).is_weighted());
    }

    #[test]
    fn workload_from_network_skips_pool() {
        let net = NetworkBuilder::new(3, 19)
            .conv("C1", 8, 3, 2)
            .unwrap()
            .pool("P1", 3, 2)
            .unwrap()
            .fully_connected("FC", 10)
            .unwrap()
            .build(7);
        let w = Workload::from_network("tiny", &net, 4);
        assert_eq!(w.len(), 2);
        assert_eq!(w.problems()[0].0, "C1");
        assert_eq!(w.problems()[1].0, "FC");
        assert!(w.problems().iter().all(|(_, p)| p.batch == 4));
    }

    #[test]
    fn workload_totals_macs() {
        let w = Workload::from_layers("alexnet-conv", &alexnet::conv_layers(), 1);
        let direct: u64 = alexnet::conv_layers().iter().map(|l| l.shape.macs(1)).sum();
        assert_eq!(w.total_macs(), direct);
        assert!(!w.is_empty());
        assert_eq!(w.name(), "alexnet-conv");
    }
}
