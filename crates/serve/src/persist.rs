//! Plan-cache persistence: compiled plans survive process restarts.
//!
//! The ROADMAP's follow-on made real: [`PlanCache::save`] writes every
//! compiled `(problem, plan)` pair to disk under a versioned schema, and
//! [`PlanCache::load`] rebuilds the cache in a *cold* process so that
//! serving resumes with **zero mapping searches** — every stage is a
//! cache hit, and re-execution is bit-exact because the wire format
//! preserves every `f64` by bit pattern (see [`eyeriss_wire`]).
//!
//! Dataflow identities travel as labels; decoding resolves them against
//! a [`DataflowRegistry`], so caches compiled with registered extension
//! dataflows reload too (and caches naming *unregistered* dataflows fail
//! with a typed error instead of misexecuting). Cost models travel the
//! same way — each key and plan records the [`CostDescriptor`] of the
//! model that priced it (label + exact numeric fingerprint), resolved
//! against a [`CostModelRegistry`] on load; plans priced under distinct
//! fingerprints never cross-hit, even under one label.
//!
//! # Example
//!
//! ```
//! use eyeriss_serve::{PlanCache, PlanCompiler};
//! use eyeriss_arch::AcceleratorConfig;
//! use eyeriss_dataflow::DataflowRegistry;
//! use eyeriss_nn::LayerShape;
//!
//! let dir = std::env::temp_dir().join("eyeriss-persist-doc");
//! std::fs::create_dir_all(&dir).ok();
//! let path = dir.join("cache.plans");
//!
//! let compiler = PlanCompiler::new(2, AcceleratorConfig::eyeriss_chip());
//! let shape = LayerShape::conv(16, 8, 11, 3, 2)?;
//! let warm = compiler.compile_layer(&shape, 4)?;
//! compiler.cache().save(&path)?;
//!
//! // A cold process reloads the cache: same plan, no search.
//! use eyeriss_arch::CostModelRegistry;
//! let cold = PlanCache::load(&path, &DataflowRegistry::builtin(), &CostModelRegistry::builtin())?;
//! let compiler2 = PlanCompiler::new(2, AcceleratorConfig::eyeriss_chip())
//!     .with_cache(std::sync::Arc::new(cold));
//! let reloaded = compiler2.compile_layer(&shape, 4)?;
//! assert_eq!(*reloaded, *warm);
//! assert_eq!(compiler2.cache().stats().misses, 0, "zero searches");
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::error::ServeError;
use crate::plan::{CompiledPlan, Footprint, PlanCache, PlanKey, StagePlan};
use eyeriss_arch::cost::CostDescriptor;
use eyeriss_arch::wire as arch_wire;
use eyeriss_arch::CostModelRegistry;
use eyeriss_cluster::wire as cluster_wire;
use eyeriss_dataflow::search::Objective;
use eyeriss_dataflow::DataflowRegistry;
use eyeriss_nn::wire as nn_wire;
use eyeriss_wire::{Value, WireError};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Schema name of a persisted plan cache.
pub const CACHE_SCHEMA: &str = "eyeriss-plan-cache";
/// Schema version of a persisted plan cache. Version 2 replaced the raw
/// `em_bits` energy fingerprint with the cost-model descriptor
/// (label + full energy/bandwidth fingerprint — see
/// [`arch_wire::COST_DESCRIPTOR_VERSION`]) in both keys and plans.
pub const CACHE_VERSION: u64 = 2;

/// Schema name of a persisted compiled plan.
pub const COMPILED_SCHEMA: &str = "eyeriss-compiled-plan";
/// Schema version of a persisted compiled plan (version 2: cost-model
/// descriptors inside each stage's cluster plan).
pub const COMPILED_VERSION: u64 = 2;

fn io_err(path: &Path, what: &str, e: std::io::Error) -> ServeError {
    ServeError::Io(format!("{what} {}: {e}", path.display()))
}

fn encode_key(k: &PlanKey) -> Value {
    Value::obj([
        ("shape", nn_wire::encode_shape(&k.shape)),
        ("n", Value::usize(k.n)),
        ("arrays", Value::usize(k.arrays)),
        ("df", Value::str(k.dataflow.label())),
        ("objective", Value::str(k.objective.label())),
        ("rows", Value::usize(k.grid.0)),
        ("cols", Value::usize(k.grid.1)),
        ("rf_bits", Value::u64(k.rf_bits)),
        ("buffer_bits", Value::u64(k.buffer_bits)),
        ("cost", arch_wire::encode_cost_descriptor(&k.cost)),
    ])
}

fn decode_key(
    v: &Value,
    reg: &DataflowRegistry,
    costs: &CostModelRegistry,
) -> Result<PlanKey, WireError> {
    let label = v.get("df")?.as_str()?;
    let dataflow = reg
        .by_label(label)
        .map(|d| d.id())
        .ok_or_else(|| WireError::Invalid(format!("unregistered dataflow {label:?}")))?;
    let objective_label = v.get("objective")?.as_str()?;
    let objective = Objective::from_label(objective_label)
        .ok_or_else(|| WireError::Invalid(format!("unknown objective {objective_label:?}")))?;
    let cost: CostDescriptor = arch_wire::decode_cost_descriptor(v.get("cost")?, costs)?;
    Ok(PlanKey {
        shape: nn_wire::decode_shape(v.get("shape")?)?,
        n: v.get("n")?.as_usize()?,
        arrays: v.get("arrays")?.as_usize()?,
        dataflow,
        objective,
        grid: (v.get("rows")?.as_usize()?, v.get("cols")?.as_usize()?),
        rf_bits: v.get("rf_bits")?.as_u64()?,
        buffer_bits: v.get("buffer_bits")?.as_u64()?,
        cost,
    })
}

impl PlanCache {
    /// Writes every compiled plan to `path` (overwriting), returning the
    /// number of plans saved. Counters (hits/misses) are *not* saved —
    /// they describe one process's lifetime, not the plans.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<usize, ServeError> {
        let path = path.as_ref();
        let entries = self.snapshot();
        let doc = Value::obj([
            ("schema", Value::str(CACHE_SCHEMA)),
            ("v", Value::u64(CACHE_VERSION)),
            (
                "plans",
                Value::arr(entries.iter().map(|(k, p)| {
                    Value::obj([
                        ("key", encode_key(k)),
                        ("plan", cluster_wire::encode_plan(p)),
                    ])
                })),
            ),
        ]);
        // Write-then-rename so a crash mid-write never destroys the
        // previously good cache file. The temp name appends to the full
        // file name (distinct targets never share a temp path) and is
        // unique per writer (concurrent savers never clobber each
        // other's in-flight temp).
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(format!(".{}.{seq}.tmp", std::process::id()));
        let tmp = path.with_file_name(tmp_name);
        std::fs::write(&tmp, doc.render()).map_err(|e| io_err(&tmp, "writing", e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, "replacing", e))?;
        Ok(entries.len())
    }

    /// Loads the plans persisted at `path` into `self` (existing entries
    /// under equal keys are kept), returning the number of plans read.
    /// Loaded entries count neither as hits nor misses until looked up.
    ///
    /// The load is all-or-nothing: every entry is decoded before any is
    /// inserted, so a rejected file never leaves the live cache
    /// partially populated.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on filesystem failures, [`ServeError::Wire`]
    /// on schema/decoding failures — including plans whose dataflow is
    /// not registered in `reg` or whose pricing cost model is not
    /// registered in `costs`.
    pub fn load_into(
        &self,
        path: impl AsRef<Path>,
        reg: &DataflowRegistry,
        costs: &CostModelRegistry,
    ) -> Result<usize, ServeError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| io_err(path, "reading", e))?;
        let doc = Value::parse(&text)?;
        doc.expect_schema(CACHE_SCHEMA, CACHE_VERSION)?;
        let entries = doc.get("plans")?.as_arr()?;
        let mut decoded = Vec::with_capacity(entries.len());
        for entry in entries {
            let key = decode_key(entry.get("key")?, reg, costs)?;
            let plan = cluster_wire::decode_plan(entry.get("plan")?, reg, costs)?;
            decoded.push((key, Arc::new(plan)));
        }
        let n = decoded.len();
        for (key, plan) in decoded {
            self.insert(key, plan);
        }
        Ok(n)
    }

    /// Builds a fresh cache from the plans persisted at `path`.
    ///
    /// # Errors
    ///
    /// As [`PlanCache::load_into`].
    pub fn load(
        path: impl AsRef<Path>,
        reg: &DataflowRegistry,
        costs: &CostModelRegistry,
    ) -> Result<PlanCache, ServeError> {
        let cache = PlanCache::new();
        cache.load_into(path, reg, costs)?;
        Ok(cache)
    }
}

/// Encodes a whole compiled network plan (versioned).
pub fn encode_compiled(plan: &CompiledPlan) -> Value {
    Value::obj([
        ("schema", Value::str(COMPILED_SCHEMA)),
        ("v", Value::u64(COMPILED_VERSION)),
        ("batch", Value::usize(plan.batch)),
        ("arrays", Value::usize(plan.arrays)),
        (
            "compile_ns",
            Value::u64(plan.compile_time.as_nanos() as u64),
        ),
        ("searched", Value::u64(plan.searched)),
        ("cached", Value::u64(plan.cached)),
        (
            "stages",
            Value::arr(plan.stages.iter().map(|s| match s {
                StagePlan::Layer {
                    name,
                    shape,
                    relu,
                    plan,
                    footprint: _,
                } => Value::obj([
                    ("stage", Value::str("layer")),
                    ("name", Value::str(name.clone())),
                    ("shape", nn_wire::encode_shape(shape)),
                    ("relu", Value::Bool(*relu)),
                    ("plan", cluster_wire::encode_plan(plan)),
                ]),
                StagePlan::Pool { name, shape } => Value::obj([
                    ("stage", Value::str("pool")),
                    ("name", Value::str(name.clone())),
                    ("shape", nn_wire::encode_shape(shape)),
                ]),
            })),
        ),
    ])
}

/// Decodes a compiled network plan. Stage footprints are re-derived from
/// the decoded shapes (they are pure functions of shape and batch).
///
/// # Errors
///
/// [`WireError`] on schema or structural problems.
pub fn decode_compiled(
    v: &Value,
    reg: &DataflowRegistry,
    costs: &CostModelRegistry,
) -> Result<CompiledPlan, WireError> {
    v.expect_schema(COMPILED_SCHEMA, COMPILED_VERSION)?;
    let batch = v.get("batch")?.as_usize()?;
    let mut stages = Vec::new();
    for s in v.get("stages")?.as_arr()? {
        let name = s.get("name")?.as_str()?.to_string();
        let shape = nn_wire::decode_shape(s.get("shape")?)?;
        stages.push(match s.get("stage")?.as_str()? {
            "layer" => StagePlan::Layer {
                name,
                shape,
                relu: s.get("relu")?.as_bool()?,
                plan: Arc::new(cluster_wire::decode_plan(s.get("plan")?, reg, costs)?),
                footprint: Footprint::of(&shape, batch),
            },
            "pool" => StagePlan::Pool { name, shape },
            other => return Err(WireError::Invalid(format!("unknown stage tag {other:?}"))),
        });
    }
    Ok(CompiledPlan {
        batch,
        arrays: v.get("arrays")?.as_usize()?,
        stages,
        compile_time: Duration::from_nanos(v.get("compile_ns")?.as_u64()?),
        searched: v.get("searched")?.as_u64()?,
        cached: v.get("cached")?.as_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanCompiler;
    use eyeriss_arch::{AcceleratorConfig, GridDims};
    use eyeriss_nn::network::NetworkBuilder;
    use eyeriss_nn::LayerShape;

    fn small_hw() -> AcceleratorConfig {
        AcceleratorConfig {
            grid: GridDims::new(6, 8),
            rf_bytes_per_pe: 512.0,
            buffer_bytes: 32.0 * 1024.0,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("eyeriss-persist-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn cache_save_load_roundtrip_is_search_free() {
        let path = tmp("roundtrip.plans");
        let compiler = PlanCompiler::new(2, small_hw());
        let shape_a = LayerShape::conv(8, 3, 13, 3, 2).unwrap();
        let shape_b = LayerShape::fully_connected(10, 8, 5).unwrap();
        let a = compiler.compile_layer(&shape_a, 4).unwrap();
        let b = compiler.compile_layer(&shape_b, 2).unwrap();
        assert_eq!(compiler.cache().save(&path).unwrap(), 2);

        let reg = DataflowRegistry::builtin();
        let costs = CostModelRegistry::builtin();
        let cold = PlanCache::load(&path, &reg, &costs).unwrap();
        assert_eq!(cold.len(), 2);
        assert_eq!(cold.stats().lookups(), 0, "loading is not looking up");
        let compiler2 = PlanCompiler::new(2, small_hw()).with_cache(Arc::new(cold));
        let a2 = compiler2.compile_layer(&shape_a, 4).unwrap();
        let b2 = compiler2.compile_layer(&shape_b, 2).unwrap();
        assert_eq!(*a2, *a);
        assert_eq!(*b2, *b);
        let stats = compiler2.cache().stats();
        assert_eq!((stats.hits, stats.misses), (2, 0), "no search after reload");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn different_operating_points_stay_distinct_after_reload() {
        let path = tmp("distinct.plans");
        let cache = Arc::new(PlanCache::new());
        let shape = LayerShape::conv(8, 3, 13, 3, 2).unwrap();
        let two = PlanCompiler::new(2, small_hw()).with_cache(Arc::clone(&cache));
        let four = PlanCompiler::new(4, small_hw()).with_cache(Arc::clone(&cache));
        two.compile_layer(&shape, 2).unwrap();
        four.compile_layer(&shape, 2).unwrap();
        assert_eq!(cache.save(&path).unwrap(), 2);
        let cold = PlanCache::load(
            &path,
            &DataflowRegistry::builtin(),
            &CostModelRegistry::builtin(),
        )
        .unwrap();
        assert_eq!(cold.len(), 2, "cluster widths keep distinct keys");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_load_leaves_the_cache_untouched() {
        // One good entry followed by one naming an unregistered
        // dataflow: the load must reject the whole file atomically.
        let path = tmp("atomic.plans");
        let compiler = PlanCompiler::new(2, small_hw());
        let shape = LayerShape::conv(8, 3, 13, 3, 2).unwrap();
        compiler.compile_layer(&shape, 4).unwrap();
        compiler.cache().save(&path).unwrap();
        // Append a clone of the good entry whose key names a dataflow
        // nobody registered.
        let mut doc = Value::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let Value::Obj(pairs) = &mut doc else {
            panic!("cache document is an object")
        };
        for (k, v) in pairs.iter_mut() {
            let Value::Arr(plans) = v else { continue };
            assert_eq!(k, "plans");
            let mut ghost = plans[0].clone();
            let Value::Obj(entry) = &mut ghost else {
                panic!("entry is an object")
            };
            for (ek, ev) in entry.iter_mut() {
                if ek != "key" {
                    continue;
                }
                let Value::Obj(key) = ev else {
                    panic!("key is an object")
                };
                for (kk, kv) in key.iter_mut() {
                    if kk == "df" {
                        *kv = Value::str("GHOST");
                    }
                }
            }
            // Good entry first: a non-atomic load would insert it
            // before tripping over the ghost.
            plans.push(ghost);
        }
        std::fs::write(&path, doc.render()).unwrap();

        let cold = PlanCache::new();
        let err = cold
            .load_into(
                &path,
                &DataflowRegistry::builtin(),
                &CostModelRegistry::builtin(),
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::Wire(WireError::Invalid(_))));
        assert!(cold.is_empty(), "partial load leaked into the cache");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn distinct_cost_models_keep_distinct_plans() {
        use eyeriss_arch::cost::StaticCostModel;
        use eyeriss_arch::EnergyModel;
        let cache = Arc::new(PlanCache::new());
        let shape = LayerShape::conv(8, 3, 13, 3, 2).unwrap();
        let table = PlanCompiler::new(2, small_hw()).with_cache(Arc::clone(&cache));
        let flat_model =
            StaticCostModel::new("flat", EnergyModel::new(200.0, 2.0, 2.0, 1.0, 1.0).unwrap());
        let flat = PlanCompiler::new(2, small_hw())
            .with_cost_model(Arc::new(flat_model))
            .with_cache(Arc::clone(&cache));
        table.compile_layer(&shape, 2).unwrap();
        flat.compile_layer(&shape, 2).unwrap();
        assert_eq!(cache.len(), 2, "cost model must be part of the key");
        assert_eq!(cache.stats().hits, 0);

        // The persisted cache reloads only when the pricing model is
        // registered; with it registered, the two entries stay distinct.
        let path = tmp("cost-models.plans");
        assert_eq!(cache.save(&path).unwrap(), 2);
        let missing = PlanCache::load(
            &path,
            &DataflowRegistry::builtin(),
            &CostModelRegistry::builtin(),
        );
        assert!(matches!(missing, Err(ServeError::Wire(_))));
        let mut costs = CostModelRegistry::builtin();
        costs.register(Arc::new(flat_model)).unwrap();
        let cold = PlanCache::load(&path, &DataflowRegistry::builtin(), &costs).unwrap();
        assert_eq!(cold.len(), 2, "distinct fingerprints stay distinct");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_is_typed_about_missing_files_and_garbage() {
        let reg = DataflowRegistry::builtin();
        assert!(matches!(
            PlanCache::load(tmp("enoent.plans"), &reg, &CostModelRegistry::builtin()),
            Err(ServeError::Io(_))
        ));
        let path = tmp("garbage.plans");
        std::fs::write(&path, "not json").unwrap();
        assert!(matches!(
            PlanCache::load(&path, &reg, &CostModelRegistry::builtin()),
            Err(ServeError::Wire(_))
        ));
        // Wrong schema name.
        let doc = Value::obj([
            ("schema", Value::str("something-else")),
            ("v", Value::u64(1)),
            ("plans", Value::arr([])),
        ]);
        std::fs::write(&path, doc.render()).unwrap();
        assert!(matches!(
            PlanCache::load(&path, &reg, &CostModelRegistry::builtin()),
            Err(ServeError::Wire(WireError::WrongSchema { .. }))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compiled_plan_roundtrips() {
        let net = NetworkBuilder::new(3, 19)
            .conv("C1", 8, 3, 2)
            .unwrap()
            .pool("P1", 3, 2)
            .unwrap()
            .fully_connected("FC", 10)
            .unwrap()
            .build(7);
        let compiler = PlanCompiler::new(2, small_hw());
        let plan = compiler.compile_network(&net, 2).unwrap();
        let reg = DataflowRegistry::builtin();
        let costs = CostModelRegistry::builtin();
        let text = encode_compiled(&plan).render();
        let back = decode_compiled(&Value::parse(&text).unwrap(), &reg, &costs).unwrap();
        assert_eq!(back, plan);
        assert_eq!(
            back.analytic_delay().to_bits(),
            plan.analytic_delay().to_bits()
        );
        assert_eq!(back.peak_footprint_words(), plan.peak_footprint_words());
    }
}
