//! Dynamic batching: coalescing queued requests into one cluster
//! execution.
//!
//! Batching amortizes per-layer configuration and filter traffic across
//! requests — the same effect the paper reports for OSC/WS ("energy
//! consumption improves significantly with batch sizes larger than 1",
//! Section VII-B) — at the cost of queueing latency. The
//! [`BatchPolicy`] bounds both sides: a batch closes when it reaches
//! `max_batch` requests or when `max_wait` has elapsed since its first
//! request, whichever comes first.

use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::time::{Duration, Instant};

/// Bounds on how long and how wide a forming batch may grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum requests coalesced into one execution.
    pub max_batch: usize,
    /// Maximum time the first request of a batch waits for company.
    pub max_wait: Duration,
}

impl BatchPolicy {
    /// A policy that never waits: every request executes alone
    /// (batch size 1).
    pub fn unbatched() -> Self {
        BatchPolicy {
            max_batch: 1,
            max_wait: Duration::ZERO,
        }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Collects the next batch from `rx` under `policy`.
///
/// Blocks until at least one item arrives, then drains further items
/// until the batch is full or the deadline passes. Returns `None` once
/// the channel is disconnected *and* empty — the shutdown signal.
pub fn collect_batch<T>(rx: &Receiver<T>, policy: &BatchPolicy) -> Option<Vec<T>> {
    let first = rx.recv().ok()?;
    let deadline = Instant::now() + policy.max_wait;
    let mut batch = vec![first];
    while batch.len() < policy.max_batch.max(1) {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            // Deadline passed: take only what is already queued.
            match rx.try_recv() {
                Ok(item) => batch.push(item),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        } else {
            match rx.recv_timeout(remaining) {
                Ok(item) => batch.push(item),
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
            }
        }
    }
    Some(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn fills_up_to_max_batch_from_queued_items() {
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let policy = BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_millis(50),
        };
        assert_eq!(collect_batch(&rx, &policy), Some(vec![0, 1, 2, 3]));
        assert_eq!(collect_batch(&rx, &policy), Some(vec![4, 5, 6, 7]));
    }

    #[test]
    fn unbatched_policy_takes_one_item() {
        let (tx, rx) = mpsc::channel();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(collect_batch(&rx, &BatchPolicy::unbatched()), Some(vec![1]));
        assert_eq!(collect_batch(&rx, &BatchPolicy::unbatched()), Some(vec![2]));
    }

    #[test]
    fn zero_wait_takes_only_already_queued_items() {
        let (tx, rx) = mpsc::channel();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let policy = BatchPolicy {
            max_batch: 8,
            max_wait: Duration::ZERO,
        };
        // Both items are queued before collection begins, so a zero-wait
        // policy still drains them without blocking.
        assert_eq!(collect_batch(&rx, &policy), Some(vec![1, 2]));
    }

    #[test]
    fn disconnect_before_any_item_signals_shutdown() {
        let (tx, rx) = mpsc::channel::<u32>();
        drop(tx);
        assert_eq!(collect_batch(&rx, &BatchPolicy::default()), None);
    }

    #[test]
    fn disconnect_mid_batch_returns_partial_batch() {
        let (tx, rx) = mpsc::channel();
        tx.send(7).unwrap();
        drop(tx);
        let policy = BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_millis(50),
        };
        assert_eq!(collect_batch(&rx, &policy), Some(vec![7]));
        assert_eq!(collect_batch(&rx, &policy), None);
    }

    #[test]
    fn deadline_closes_a_partial_batch() {
        let (tx, rx) = mpsc::channel();
        tx.send(1).unwrap();
        let policy = BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_millis(10),
        };
        let start = Instant::now();
        let batch = collect_batch(&rx, &policy).unwrap();
        assert_eq!(batch, vec![1]);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline must bound the wait"
        );
        drop(tx);
    }
}
