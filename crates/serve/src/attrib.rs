//! Per-request energy/delay attribution.
//!
//! The paper's central artifact is an attribution — energy split per
//! storage level and per datatype (§VI) — which [`CostReport`] already
//! computes per plan, offline. This module carries that attribution
//! through the serving path: every completed request (telemetry
//! enabled) gets an [`Attribution`] tying its wall-clock latency
//! breakdown to the plan's analytic energy and delay, plus the
//! *residual* between the cycles the simulator actually spent and the
//! cycles the plan predicted — the prediction error an admission
//! controller must trust before scheduling against `analytic_delay`.

use crate::metrics::LatencyBreakdown;
use eyeriss_arch::cost::CostReport;
use eyeriss_telemetry::FlightRecord;

/// Where one request's nanoseconds and nanojoules went.
///
/// Energy and delay figures are **batch-level**: [`Attribution::report`]
/// is bit-exact against the executed
/// [`CompiledPlan::cost_report`](crate::CompiledPlan::cost_report) and
/// [`Attribution::analytic_delay`] against its
/// [`analytic_delay`](crate::CompiledPlan::analytic_delay), because the
/// whole batch rode one plan. [`Attribution::per_request`] derives this
/// request's even energy share.
///
/// The residual is kept in the **cycle** domain (simulated cycles minus
/// the plan's predicted delay in MAC-time units) rather than wall
/// nanoseconds: both operands live on the model's clock, so the error
/// is host-machine independent. Wall time is still available through
/// [`Attribution::latency`].
#[derive(Debug, Clone, Copy)]
pub struct Attribution {
    /// The request id.
    pub id: u64,
    /// Trace id linking this record to its span tree (0 = untraced).
    pub trace: u64,
    /// Requests that shared the batch (≥ 1).
    pub batch_size: usize,
    /// Wall-clock queue/compile/execute breakdown.
    pub latency: LatencyBreakdown,
    /// The executed plan's full energy+delay report for the batch —
    /// per-level × per-datatype, bit-exact against the plan.
    pub report: CostReport,
    /// The plan's predicted delay for the batch, in cycles (MAC-time
    /// units), weighted stages only.
    pub analytic_delay: f64,
    /// Cycles the simulator measured across the batch's weighted
    /// stages.
    pub measured_cycles: u64,
    /// Submission time, ns since the server's telemetry epoch.
    pub submitted_ns: u64,
    /// Completion time, ns since the server's telemetry epoch.
    pub completed_ns: u64,
}

impl Attribution {
    /// This request's even share of the batch energy: the batch report
    /// with every energy term divided by [`Attribution::batch_size`]
    /// (delays untouched — the batch's latency is shared, not split).
    pub fn per_request(&self) -> CostReport {
        self.report.scaled(1.0 / self.batch_size as f64)
    }

    /// Prediction error in cycles: measured minus predicted (positive
    /// = the plan was optimistic). Histogrammed server-wide as
    /// `serve.delay_residual`.
    pub fn residual_cycles(&self) -> f64 {
        self.measured_cycles as f64 - self.analytic_delay
    }

    /// The flat summary fed to the
    /// [`SloMonitor`](eyeriss_telemetry::SloMonitor) flight ring.
    pub fn flight_record(&self) -> FlightRecord {
        FlightRecord {
            id: self.id,
            trace: self.trace,
            start_ns: self.submitted_ns,
            end_ns: self.completed_ns,
            latency_ns: self.latency.total().as_nanos().min(u64::MAX as u128) as u64,
            batch: self.batch_size as u64,
            energy: self.report.total_energy,
            analytic_delay: self.analytic_delay,
            residual: self.residual_cycles(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_arch::cost::{CostModel, TableIv};
    use eyeriss_arch::{DataType, Level};
    use std::time::Duration;

    fn sample() -> Attribution {
        let mut report = CostReport::zero(TableIv.descriptor());
        report.alu_energy = 100.0;
        report.total_energy = 100.0;
        Attribution {
            id: 3,
            trace: 11,
            batch_size: 4,
            latency: LatencyBreakdown {
                queue: Duration::from_micros(10),
                compile: Duration::from_micros(2),
                execute: Duration::from_micros(30),
            },
            report,
            analytic_delay: 900.0,
            measured_cycles: 1000,
            submitted_ns: 500,
            completed_ns: 42_500,
        }
    }

    #[test]
    fn per_request_is_the_even_energy_share() {
        let att = sample();
        let share = att.per_request();
        assert_eq!(share.total_energy, 25.0);
        assert_eq!(share.delay, att.report.delay, "delay is not split");
        for level in Level::ALL {
            assert_eq!(share.energy_at(level), att.report.energy_at(level) / 4.0);
        }
        for ty in DataType::ALL {
            assert_eq!(share.energy_of(ty), att.report.energy_of(ty) / 4.0);
        }
    }

    #[test]
    fn residual_and_flight_record_agree() {
        let att = sample();
        assert_eq!(att.residual_cycles(), 100.0);
        let rec = att.flight_record();
        assert_eq!(rec.id, 3);
        assert_eq!(rec.trace, 11);
        assert_eq!(rec.batch, 4);
        assert_eq!(rec.latency_ns, 42_000);
        assert_eq!((rec.start_ns, rec.end_ns), (500, 42_500));
        assert_eq!(rec.energy, 100.0);
        assert_eq!(rec.residual, 100.0);
    }
}
