//! `serve::sched` — SLO-aware multi-tenant admission control and
//! deadline scheduling.
//!
//! The scheduling layer between submission and execution: instead of
//! admitting blindly into the raw MPSC FIFO, a sched-enabled
//! [`Server`](crate::Server) routes every request through
//!
//! * a [`tenant::TenantRegistry`] — per-tenant weight, priority tier
//!   and token-bucket rate limit, carried on
//!   [`SubmitOptions`](crate::SubmitOptions);
//! * an [`admission::AdmissionController`] — completion time estimated
//!   from the plan's analytic delay (calibrated to wall time by an
//!   EWMA the workers feed) plus the live queue backlog; requests that
//!   cannot make their deadline are rejected **now** with a typed
//!   [`admission::AdmissionError`], and lowest-tier work is shed while
//!   the [`SloMonitor`](eyeriss_telemetry::SloMonitor) burn signal is
//!   live;
//! * a [`queue::ReadyQueue`] — earliest-deadline-first with priority
//!   tiers and aging, arbitrated across tenants by deficit round robin
//!   so backlogged tenants' throughput shares converge to their
//!   configured weights.
//!
//! Configure it with [`SchedConfig`] on
//! [`ServeConfig::sched`](crate::ServeConfig) (or
//! `ServeOptions::sched` through the engine). Servers without a
//! `SchedConfig` keep the legacy FIFO path bit-for-bit.

pub mod admission;
pub mod queue;
pub mod tenant;

pub use admission::{AdmissionController, AdmissionError, AdmitRequest, Backlog, ServiceEstimator};
pub use queue::{Drained, Popped, PushError, Pushed, ReadyQueue};
pub use tenant::{
    Priority, RateLimit, TenantId, TenantRegistry, TenantSnapshot, TenantSpec, TokenBucket,
};

use std::time::Duration;

/// Configuration of the scheduling layer (present on
/// [`ServeConfig::sched`](crate::ServeConfig) = scheduling on).
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Tenants to register at startup, ids assigned in order starting
    /// at 1 (the default tenant is always id 0). More can join later
    /// via [`Server::register_tenant`](crate::Server::register_tenant).
    pub tenants: Vec<TenantSpec>,
    /// DRR quantum: credit granted per round is `quantum × weight`.
    pub quantum: f64,
    /// Aging interval: queued work is promoted one priority tier per
    /// `aging` waited ([`Duration::ZERO`] disables promotion).
    pub aging: Duration,
    /// Ready-queue capacity; 0 means "use
    /// [`ServeConfig::queue_capacity`](crate::ServeConfig)".
    pub capacity: usize,
}

impl SchedConfig {
    /// Defaults: no extra tenants, quantum 1, 50 ms aging, queue
    /// capacity inherited from the server.
    pub fn new() -> SchedConfig {
        SchedConfig {
            tenants: Vec::new(),
            quantum: 1.0,
            aging: Duration::from_millis(50),
            capacity: 0,
        }
    }

    /// Adds a tenant to register at startup.
    pub fn tenant(mut self, spec: TenantSpec) -> SchedConfig {
        self.tenants.push(spec);
        self
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig::new()
    }
}
