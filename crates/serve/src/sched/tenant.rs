//! The tenant registry: who may submit, at what priority, weight and
//! rate.
//!
//! Eyeriss v2's motivating observation is workload diversity — one
//! array pool serves many models with wildly different shapes — so the
//! serving runtime needs a first-class notion of *who* a request
//! belongs to before it can arbitrate fairly. A [`TenantSpec`] declares
//! a tenant's DRR weight (its long-run throughput share), its
//! [`Priority`] tier (which work goes first, and which is shed first
//! under burn), and an optional token-bucket [`RateLimit`]. The
//! registry hands out sequential [`TenantId`]s and keeps live
//! per-tenant counters — admitted, rejected, completed, shed, expired —
//! mirrored into telemetry as `serve.tenant.<name>.*` counters.
//!
//! Tenant 0 (`"default"`, weight 1, [`Priority::Normal`], unlimited) is
//! always present: plain [`Server::submit`](crate::Server::submit)
//! calls land there, so single-tenant callers never see this module.

use crate::sched::admission::AdmissionError;
use eyeriss_telemetry::{Counter, Telemetry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Identifies a registered tenant (sequential, tenant 0 is the
/// always-present default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

impl Default for TenantId {
    fn default() -> Self {
        TenantId::DEFAULT
    }
}

impl TenantId {
    /// The always-present default tenant.
    pub const DEFAULT: TenantId = TenantId(0);

    /// The registry index of this tenant.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Scheduling priority tier. Lower tiers dispatch first; the lowest
/// tier is shed first when the SLO monitor burns. Aging promotes
/// waiting work one tier per configured aging interval, so no tier
/// starves (see [`crate::sched::queue::ReadyQueue`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-critical work: dispatched before everything else.
    High,
    /// The default tier.
    #[default]
    Normal,
    /// Throughput/batch work: first to wait, first to shed.
    Low,
}

impl Priority {
    /// Numeric tier, 0 highest.
    pub fn tier(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// The lowest (shed-first) tier number.
    pub const LOWEST_TIER: u8 = 2;
}

/// A token-bucket rate limit: sustained `rps` with bursts up to
/// `burst` requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained refill rate, requests per second.
    pub rps: f64,
    /// Bucket capacity — how many requests may arrive back-to-back.
    pub burst: f64,
}

impl RateLimit {
    /// A limit of `rps` sustained with a burst allowance of `burst`.
    pub fn new(rps: f64, burst: f64) -> RateLimit {
        RateLimit {
            rps: rps.max(0.0),
            burst: burst.max(1.0),
        }
    }
}

/// Clock-free token bucket: callers stamp every take with
/// epoch-relative nanoseconds, so rate limiting is deterministic and
/// testable without sleeping (the same convention as
/// [`eyeriss_telemetry::SloMonitor`]).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    limit: RateLimit,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// A full bucket under `limit`.
    pub fn new(limit: RateLimit) -> TokenBucket {
        TokenBucket {
            limit,
            tokens: limit.burst,
            last_ns: 0,
        }
    }

    /// Takes one token at `now_ns`, refilling first. Returns false when
    /// the bucket is empty (the submit is over quota).
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        let elapsed = now_ns.saturating_sub(self.last_ns);
        self.last_ns = self.last_ns.max(now_ns);
        let refill = elapsed as f64 * 1e-9 * self.limit.rps;
        self.tokens = (self.tokens + refill).min(self.limit.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Declares one tenant: display name, DRR throughput weight, priority
/// tier and optional rate limit.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name — also the telemetry label
    /// (`serve.tenant.<name>.completed` etc.).
    pub name: String,
    /// Deficit-round-robin weight: long-run completed-throughput shares
    /// converge to the ratio of backlogged tenants' weights.
    pub weight: f64,
    /// Priority tier (overridable per request via
    /// [`SubmitOptions`](crate::SubmitOptions)).
    pub priority: Priority,
    /// Optional token-bucket rate limit (`None` = unlimited).
    pub rate: Option<RateLimit>,
}

impl TenantSpec {
    /// A tenant named `name` with weight 1, [`Priority::Normal`] and no
    /// rate limit.
    pub fn new(name: &str) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            weight: 1.0,
            priority: Priority::Normal,
            rate: None,
        }
    }

    /// Sets the DRR weight (clamped to a small positive minimum).
    pub fn weight(mut self, weight: f64) -> TenantSpec {
        self.weight = weight.max(1e-3);
        self
    }

    /// Sets the priority tier.
    pub fn priority(mut self, priority: Priority) -> TenantSpec {
        self.priority = priority;
        self
    }

    /// Sets a token-bucket rate limit.
    pub fn rate(mut self, limit: RateLimit) -> TenantSpec {
        self.rate = Some(limit);
        self
    }
}

/// Pre-resolved per-tenant telemetry counters (one registry lookup per
/// counter per tenant, at registration).
#[derive(Debug, Clone)]
struct TenantTele {
    admitted: Counter,
    rejected: Counter,
    completed: Counter,
    shed: Counter,
    expired: Counter,
    failed: Counter,
}

/// Live state of one tenant: its spec, rate-limit bucket and lifetime
/// counters.
#[derive(Debug)]
pub struct TenantState {
    id: TenantId,
    spec: TenantSpec,
    bucket: Option<Mutex<TokenBucket>>,
    tele: TenantTele,
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
}

impl TenantState {
    fn new(id: TenantId, spec: TenantSpec, tele: &Telemetry) -> TenantState {
        let counter = |kind: &str| tele.counter(&format!("serve.tenant.{}.{kind}", spec.name));
        TenantState {
            bucket: spec.rate.map(|r| Mutex::new(TokenBucket::new(r))),
            tele: TenantTele {
                admitted: counter("admitted"),
                rejected: counter("rejected"),
                completed: counter("completed"),
                shed: counter("shed"),
                expired: counter("expired"),
                failed: counter("failed"),
            },
            id,
            spec,
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    /// This tenant's id.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// This tenant's declared spec.
    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    /// Takes one rate-limit token at `now_ns`; unlimited tenants always
    /// succeed.
    pub fn try_take(&self, now_ns: u64) -> bool {
        match &self.bucket {
            None => true,
            Some(bucket) => bucket
                .lock()
                .expect("token bucket poisoned")
                .try_take(now_ns),
        }
    }

    /// Counts one submit attempt (admitted or not).
    pub fn note_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one admitted request.
    pub fn note_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.tele.admitted.inc();
    }

    /// Counts one rejection (any [`AdmissionError`]); sheds and
    /// expiries additionally land in their own counters.
    pub fn note_rejected(&self, err: &AdmissionError) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.tele.rejected.inc();
        if matches!(
            err,
            AdmissionError::Shed | AdmissionError::QueueFull | AdmissionError::RateLimited
        ) {
            self.note_shed();
        }
    }

    /// Counts one completed request.
    pub fn note_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.tele.completed.inc();
    }

    /// Counts one shed (burn-rate back-off, queue eviction or quota).
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.tele.shed.inc();
    }

    /// Counts one request whose deadline expired in queue (shed at
    /// dispatch rather than admission).
    pub fn note_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
        self.tele.expired.inc();
    }

    /// Counts one admitted request that failed in execution — a worker
    /// died or a fault exhausted its retry budget. Failed requests are
    /// accounted here, never leaked as forever-`submitted`.
    pub fn note_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        self.tele.failed.inc();
    }

    fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            id: self.id,
            name: self.spec.name.clone(),
            weight: self.spec.weight,
            priority: self.spec.priority,
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of one tenant's lifetime counters, from
/// [`TenantRegistry::snapshots`] (surfaced on
/// [`ServerSnapshot::tenants`](crate::ServerSnapshot)).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Tenant id.
    pub id: TenantId,
    /// Display name.
    pub name: String,
    /// Configured DRR weight.
    pub weight: f64,
    /// Configured priority tier.
    pub priority: Priority,
    /// Submit attempts (admitted + rejected).
    pub submitted: u64,
    /// Requests admitted into the ready queue.
    pub admitted: u64,
    /// Requests rejected at admission (all causes).
    pub rejected: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed (burn back-off, eviction, quota).
    pub shed: u64,
    /// Requests whose deadline expired in queue.
    pub expired: u64,
    /// Admitted requests that failed in execution (worker death or
    /// exhausted retry budget).
    pub failed: u64,
}

/// The shared tenant registry. Cheap to clone (all clones share
/// state); ids are sequential and stable for the registry's lifetime.
#[derive(Debug, Clone)]
pub struct TenantRegistry {
    tele: Telemetry,
    tenants: Arc<RwLock<Vec<Arc<TenantState>>>>,
}

impl TenantRegistry {
    /// A registry holding only the default tenant, minting per-tenant
    /// counters into `tele`.
    pub fn new(tele: Telemetry) -> TenantRegistry {
        let registry = TenantRegistry {
            tele,
            tenants: Arc::new(RwLock::new(Vec::new())),
        };
        let id = registry.register(TenantSpec::new("default"));
        debug_assert_eq!(id, TenantId::DEFAULT);
        registry
    }

    /// Registers `spec`, returning its new id.
    pub fn register(&self, spec: TenantSpec) -> TenantId {
        let mut tenants = self.tenants.write().expect("tenant registry poisoned");
        let id = TenantId(tenants.len() as u64);
        tenants.push(Arc::new(TenantState::new(id, spec, &self.tele)));
        id
    }

    /// The tenant behind `id`, if registered.
    pub fn get(&self, id: TenantId) -> Option<Arc<TenantState>> {
        self.tenants
            .read()
            .expect("tenant registry poisoned")
            .get(id.index())
            .cloned()
    }

    /// Looks a tenant up by display name.
    pub fn by_name(&self, name: &str) -> Option<Arc<TenantState>> {
        self.tenants
            .read()
            .expect("tenant registry poisoned")
            .iter()
            .find(|t| t.spec.name == name)
            .cloned()
    }

    /// Registered tenant count (at least 1: the default tenant).
    pub fn len(&self) -> usize {
        self.tenants.read().expect("tenant registry poisoned").len()
    }

    /// Never true — the default tenant is always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Snapshots every tenant's counters, in id order.
    pub fn snapshots(&self) -> Vec<TenantSnapshot> {
        self.tenants
            .read()
            .expect("tenant registry poisoned")
            .iter()
            .map(|t| t.snapshot())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_tiers_are_ordered() {
        assert!(Priority::High.tier() < Priority::Normal.tier());
        assert!(Priority::Normal.tier() < Priority::Low.tier());
        assert_eq!(Priority::Low.tier(), Priority::LOWEST_TIER);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn token_bucket_refills_at_rate() {
        let mut bucket = TokenBucket::new(RateLimit::new(2.0, 3.0)); // 2 rps, burst 3
        assert!(bucket.try_take(0));
        assert!(bucket.try_take(0));
        assert!(bucket.try_take(0), "burst of 3 back-to-back");
        assert!(!bucket.try_take(0), "bucket empty");
        assert!(
            !bucket.try_take(100_000_000),
            "0.1s refills only 0.2 tokens"
        );
        assert!(
            bucket.try_take(600_000_000),
            "0.6s total refills 1.2 tokens"
        );
        assert!(!bucket.try_take(600_000_000));
        // Time going backwards (cross-thread stamps) never panics or
        // mints tokens.
        assert!(!bucket.try_take(300_000_000));
    }

    #[test]
    fn registry_mints_sequential_ids_with_default_first() {
        let registry = TenantRegistry::new(Telemetry::new_enabled());
        assert_eq!(registry.len(), 1);
        assert!(!registry.is_empty());
        let a = registry.register(TenantSpec::new("a").weight(3.0));
        let b = registry.register(
            TenantSpec::new("b")
                .priority(Priority::Low)
                .rate(RateLimit::new(10.0, 2.0)),
        );
        assert_eq!((a, b), (TenantId(1), TenantId(2)));
        assert_eq!(
            registry.get(TenantId::DEFAULT).unwrap().spec().name,
            "default"
        );
        assert_eq!(registry.by_name("a").unwrap().id(), a);
        assert!(registry.get(TenantId(9)).is_none());
        let t = registry.get(b).unwrap();
        assert!(t.try_take(0) && t.try_take(0), "burst of 2");
        assert!(!t.try_take(0), "over quota");
        assert!(
            registry.get(a).unwrap().try_take(0),
            "unlimited tenants always admit"
        );
    }

    #[test]
    fn counters_land_in_snapshot_and_telemetry() {
        let tele = Telemetry::new_enabled();
        let registry = TenantRegistry::new(tele.clone());
        let id = registry.register(TenantSpec::new("acme"));
        let t = registry.get(id).unwrap();
        t.note_submitted();
        t.note_admitted();
        t.note_completed();
        t.note_submitted();
        t.note_rejected(&AdmissionError::QueueFull);
        t.note_expired();
        t.note_failed();
        let snap = &registry.snapshots()[id.index()];
        assert_eq!(snap.name, "acme");
        assert_eq!((snap.submitted, snap.admitted, snap.rejected), (2, 1, 1));
        assert_eq!((snap.completed, snap.shed, snap.expired), (1, 1, 1));
        assert_eq!(snap.failed, 1);
        assert_eq!(tele.counter("serve.tenant.acme.completed").get(), 1);
        assert_eq!(tele.counter("serve.tenant.acme.shed").get(), 1);
        assert_eq!(tele.counter("serve.tenant.acme.expired").get(), 1);
        assert_eq!(tele.counter("serve.tenant.acme.failed").get(), 1);
        // A deadline rejection is not a shed.
        t.note_rejected(&AdmissionError::DeadlinePassed);
        assert_eq!(registry.snapshots()[id.index()].shed, 1);
    }
}
