//! Admission control: estimate a request's completion time before it
//! enters the queue, and reject what cannot make its deadline.
//!
//! The estimate composes two things the runtime already computes but —
//! before this module — never consulted at enqueue time:
//!
//! * the plan's **analytic delay**
//!   ([`CompiledPlan::analytic_delay`](crate::CompiledPlan::analytic_delay)),
//!   converted to wall time
//!   through a [`ServiceEstimator`] — an EWMA of measured
//!   nanoseconds-per-analytic-cycle fed by the workers after every
//!   batch, so the conversion tracks the actual machine; and
//! * the **live backlog** from the telemetry gauges
//!   (`serve.queue_depth`, `serve.inflight_batches`), turned into an
//!   expected queue wait across the worker pool.
//!
//! A request whose estimated completion lands past its deadline is
//! rejected with [`AdmissionError::DeadlineInfeasible`] *now*, instead
//! of rotting in queue and missing anyway. Until the estimator has seen
//! its first batch the controller admits optimistically — except
//! already-passed deadlines, which are **always** rejected (a property
//! the scheduler test-suite pins down).
//!
//! Sustained overload arrives as the
//! [`SloMonitor`](eyeriss_telemetry::SloMonitor)
//! live burn signal: while burning, the
//! controller sheds lowest-tier work with [`AdmissionError::Shed`]
//! before it ever queues.

use crate::sched::tenant::{Priority, TenantState};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Why admission rejected a request. Carried inside
/// [`ServeError::Admission`](crate::ServeError::Admission).
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The deadline had already passed at submit (or at dispatch, for
    /// requests that expired in queue). Never admitted, calibrated or
    /// not.
    DeadlinePassed,
    /// The estimated completion time misses the deadline: admitting
    /// would waste array time on a request that cannot succeed.
    DeadlineInfeasible {
        /// Estimated completion, ns since the telemetry epoch.
        estimated_ns: u64,
        /// The request's deadline, ns since the telemetry epoch.
        deadline_ns: u64,
    },
    /// The tenant's token bucket is empty (over its configured rate).
    RateLimited,
    /// The submit named an unregistered
    /// [`TenantId`](crate::sched::TenantId).
    UnknownTenant(u64),
    /// The ready queue is full and the request did not outrank any
    /// queued entry.
    QueueFull,
    /// Shed under sustained overload: the SLO monitor is burning and
    /// this request sits in the lowest priority tier — or it was
    /// evicted from a full queue by higher-priority work.
    Shed,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::DeadlinePassed => write!(f, "deadline already passed"),
            AdmissionError::DeadlineInfeasible {
                estimated_ns,
                deadline_ns,
            } => write!(
                f,
                "deadline infeasible: estimated completion {estimated_ns} ns past deadline {deadline_ns} ns"
            ),
            AdmissionError::RateLimited => write!(f, "tenant over its configured rate"),
            AdmissionError::UnknownTenant(id) => write!(f, "unknown tenant {id}"),
            AdmissionError::QueueFull => write!(f, "ready queue full"),
            AdmissionError::Shed => write!(f, "shed under overload"),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[derive(Debug, Default, Clone, Copy)]
struct EstimatorState {
    ns_per_cycle: f64,
    samples: u64,
}

/// EWMA calibration of wall nanoseconds per analytic cycle. Workers
/// feed one sample per executed batch (`measured execute time ÷ the
/// batch plan's analytic delay`); admission multiplies the plan's
/// analytic delay back out to predict service time on *this* machine.
#[derive(Debug, Default)]
pub struct ServiceEstimator {
    state: Mutex<EstimatorState>,
}

/// EWMA smoothing factor: new samples move the estimate 20%.
const EWMA_ALPHA: f64 = 0.2;

impl ServiceEstimator {
    /// An uncalibrated estimator (admits optimistically until the
    /// first observation).
    pub fn new() -> ServiceEstimator {
        ServiceEstimator::default()
    }

    /// Feeds one executed batch: its plan's analytic delay in cycles
    /// and the measured execute wall time. Non-positive cycle counts
    /// are ignored.
    pub fn observe(&self, analytic_cycles: f64, execute_ns: u64) {
        if !analytic_cycles.is_finite() || analytic_cycles <= 0.0 {
            return;
        }
        let sample = execute_ns as f64 / analytic_cycles;
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.ns_per_cycle = if state.samples == 0 {
            sample
        } else {
            state.ns_per_cycle + EWMA_ALPHA * (sample - state.ns_per_cycle)
        };
        state.samples += 1;
    }

    /// The calibrated nanoseconds-per-cycle, `None` before the first
    /// observation.
    pub fn ns_per_cycle(&self) -> Option<f64> {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        (state.samples > 0).then_some(state.ns_per_cycle)
    }

    /// Observations folded in so far.
    pub fn samples(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .samples
    }
}

/// A live view of the queue the controller prices against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Backlog {
    /// Requests waiting in the ready queue (`serve.queue_depth`).
    pub queued: i64,
    /// Batches currently executing (`serve.inflight_batches`).
    pub inflight: i64,
}

/// One submit as the admission controller sees it: everything about
/// the request and the instant it arrived, separate from the tenant
/// whose quota it draws on.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitRequest {
    /// Effective priority tier ([`Priority::tier`]).
    pub tier: u8,
    /// Absolute deadline on the telemetry epoch timeline, if any.
    pub deadline_ns: Option<u64>,
    /// Submission instant on the same timeline.
    pub now_ns: u64,
    /// Batch-1 analytic cycles of the compiled plan, if known.
    pub unit_cycles: Option<f64>,
    /// Live queue/in-flight depths priced into the completion estimate.
    pub backlog: Backlog,
    /// Whether the SLO monitor is currently burning (sheds lowest tier).
    pub burning: bool,
}

/// The admission controller: deadline feasibility, rate limiting and
/// burn-rate load shedding, evaluated in a fixed order so the
/// "already-passed deadlines are always rejected" property holds even
/// uncalibrated.
#[derive(Debug)]
pub struct AdmissionController {
    estimator: ServiceEstimator,
    workers: AtomicUsize,
    max_batch: usize,
}

impl AdmissionController {
    /// A controller for a pool of `workers` workers batching up to
    /// `max_batch` (both clamped to at least 1).
    pub fn new(workers: usize, max_batch: usize) -> AdmissionController {
        AdmissionController {
            estimator: ServiceEstimator::new(),
            workers: AtomicUsize::new(workers.max(1)),
            max_batch: max_batch.max(1),
        }
    }

    /// The calibration the workers feed ([`ServiceEstimator::observe`]).
    pub fn estimator(&self) -> &ServiceEstimator {
        &self.estimator
    }

    /// The live worker-pool size priced into completion estimates.
    pub fn workers(&self) -> usize {
        self.workers.load(Ordering::Relaxed)
    }

    /// Re-prices completion estimates for a pool of `workers` live
    /// workers (clamped to at least 1). The supervisor calls this when
    /// a worker retires so degraded capacity shows up in admission
    /// decisions immediately.
    pub fn set_workers(&self, workers: usize) {
        self.workers.store(workers.max(1), Ordering::Relaxed);
    }

    /// Estimated completion time (ns since the epoch) for a request of
    /// `unit_cycles` analytic cycles submitted at `now_ns` against
    /// `backlog`: queue wait (pending batches spread across the pool)
    /// plus one service time. `None` until calibrated.
    pub fn estimate_completion_ns(
        &self,
        now_ns: u64,
        unit_cycles: Option<f64>,
        backlog: Backlog,
    ) -> Option<u64> {
        let ns_per_cycle = self.estimator.ns_per_cycle()?;
        let service_ns = ns_per_cycle * unit_cycles?;
        let pending_batches = (backlog.queued.max(0) as f64 / self.max_batch as f64).ceil()
            + backlog.inflight.max(0) as f64;
        let wait_ns = service_ns * pending_batches / self.workers() as f64;
        Some(now_ns.saturating_add((wait_ns + service_ns) as u64))
    }

    /// Decides one submit. Checks run in order: expired deadline
    /// (always enforced), burn-rate shedding of lowest-tier work,
    /// tenant rate limit, then deadline feasibility against the
    /// completion estimate (skipped while uncalibrated).
    ///
    /// # Errors
    ///
    /// The [`AdmissionError`] naming the failed check.
    pub fn admit(&self, tenant: &TenantState, req: AdmitRequest) -> Result<(), AdmissionError> {
        if let Some(deadline) = req.deadline_ns {
            if deadline <= req.now_ns {
                return Err(AdmissionError::DeadlinePassed);
            }
        }
        if req.burning && req.tier >= Priority::LOWEST_TIER {
            return Err(AdmissionError::Shed);
        }
        if !tenant.try_take(req.now_ns) {
            return Err(AdmissionError::RateLimited);
        }
        if let (Some(deadline), Some(estimated_ns)) = (
            req.deadline_ns,
            self.estimate_completion_ns(req.now_ns, req.unit_cycles, req.backlog),
        ) {
            if estimated_ns > deadline {
                return Err(AdmissionError::DeadlineInfeasible {
                    estimated_ns,
                    deadline_ns: deadline,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::tenant::{RateLimit, TenantRegistry, TenantSpec};
    use eyeriss_telemetry::Telemetry;
    use std::sync::Arc;

    fn tenant(spec: TenantSpec) -> Arc<TenantState> {
        let registry = TenantRegistry::new(Telemetry::new_enabled());
        let id = registry.register(spec);
        registry.get(id).unwrap()
    }

    fn req(
        tier: u8,
        deadline_ns: Option<u64>,
        now_ns: u64,
        unit_cycles: Option<f64>,
        backlog: Backlog,
        burning: bool,
    ) -> AdmitRequest {
        AdmitRequest {
            tier,
            deadline_ns,
            now_ns,
            unit_cycles,
            backlog,
            burning,
        }
    }

    #[test]
    fn estimator_ewma_tracks_samples() {
        let est = ServiceEstimator::new();
        assert_eq!(est.ns_per_cycle(), None, "uncalibrated at birth");
        est.observe(0.0, 1_000); // ignored: no cycles
        assert_eq!(est.samples(), 0);
        est.observe(100.0, 1_000); // 10 ns/cycle seeds
        assert_eq!(est.ns_per_cycle(), Some(10.0));
        est.observe(100.0, 2_000); // 20 ns/cycle sample, EWMA 0.2
        let v = est.ns_per_cycle().unwrap();
        assert!((v - 12.0).abs() < 1e-9, "10 + 0.2*(20-10) = 12, got {v}");
    }

    #[test]
    fn past_deadlines_always_rejected_even_uncalibrated() {
        let ctl = AdmissionController::new(2, 4);
        let t = tenant(TenantSpec::new("t"));
        assert_eq!(
            ctl.admit(&t, req(1, Some(100), 100, None, Backlog::default(), false)),
            Err(AdmissionError::DeadlinePassed),
            "deadline == now is already passed"
        );
        assert_eq!(
            ctl.admit(&t, req(1, Some(50), 100, None, Backlog::default(), false)),
            Err(AdmissionError::DeadlinePassed)
        );
        // Future deadline, no calibration: optimistic admit.
        assert_eq!(
            ctl.admit(&t, req(1, Some(200), 100, None, Backlog::default(), false)),
            Ok(())
        );
    }

    #[test]
    fn infeasible_deadline_rejected_once_calibrated() {
        let ctl = AdmissionController::new(1, 1);
        ctl.estimator().observe(1_000.0, 1_000_000); // 1000 ns/cycle
        let t = tenant(TenantSpec::new("t"));
        let unit = Some(1_000.0); // service = 1ms
        let backlog = Backlog {
            queued: 4,
            inflight: 1,
        };
        // Estimated completion: now + (4 + 1 batches) * 1ms wait + 1ms.
        let est = ctl.estimate_completion_ns(0, unit, backlog).unwrap();
        assert_eq!(est, 6_000_000);
        match ctl.admit(&t, req(1, Some(2_000_000), 0, unit, backlog, false)) {
            Err(AdmissionError::DeadlineInfeasible {
                estimated_ns,
                deadline_ns,
            }) => {
                assert_eq!((estimated_ns, deadline_ns), (est, 2_000_000));
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
        // A feasible deadline admits; no deadline always admits.
        assert_eq!(
            ctl.admit(&t, req(1, Some(10_000_000), 0, unit, backlog, false)),
            Ok(())
        );
        assert_eq!(ctl.admit(&t, req(1, None, 0, unit, backlog, false)), Ok(()));
    }

    #[test]
    fn burning_sheds_only_the_lowest_tier() {
        let ctl = AdmissionController::new(2, 4);
        let t = tenant(TenantSpec::new("t"));
        let b = Backlog::default();
        assert_eq!(
            ctl.admit(&t, req(Priority::Low.tier(), None, 0, None, b, true)),
            Err(AdmissionError::Shed)
        );
        assert_eq!(
            ctl.admit(&t, req(Priority::Normal.tier(), None, 0, None, b, true)),
            Ok(())
        );
        assert_eq!(
            ctl.admit(&t, req(Priority::High.tier(), None, 0, None, b, true)),
            Ok(())
        );
        assert_eq!(
            ctl.admit(&t, req(Priority::Low.tier(), None, 0, None, b, false)),
            Ok(())
        );
    }

    #[test]
    fn rate_limit_rejects_over_quota() {
        let ctl = AdmissionController::new(2, 4);
        let t = tenant(TenantSpec::new("t").rate(RateLimit::new(1.0, 1.0)));
        let b = Backlog::default();
        assert_eq!(ctl.admit(&t, req(1, None, 0, None, b, false)), Ok(()));
        assert_eq!(
            ctl.admit(&t, req(1, None, 0, None, b, false)),
            Err(AdmissionError::RateLimited)
        );
        // A passed deadline outranks the quota check.
        assert_eq!(
            ctl.admit(&t, req(1, Some(0), 1, None, b, false)),
            Err(AdmissionError::DeadlinePassed)
        );
    }

    #[test]
    fn set_workers_reprices_queue_wait() {
        let ctl = AdmissionController::new(4, 1);
        ctl.estimator().observe(1_000.0, 1_000_000); // 1000 ns/cycle
        let unit = Some(1_000.0); // service = 1ms
        let backlog = Backlog {
            queued: 4,
            inflight: 0,
        };
        // 4 pending batches over 4 workers: 1ms wait + 1ms service.
        assert_eq!(
            ctl.estimate_completion_ns(0, unit, backlog),
            Some(2_000_000)
        );
        ctl.set_workers(1);
        assert_eq!(ctl.workers(), 1);
        // Same backlog over 1 worker: 4ms wait + 1ms service.
        assert_eq!(
            ctl.estimate_completion_ns(0, unit, backlog),
            Some(5_000_000)
        );
        ctl.set_workers(0);
        assert_eq!(ctl.workers(), 1, "clamped to at least one worker");
    }

    #[test]
    fn errors_display() {
        for e in [
            AdmissionError::DeadlinePassed,
            AdmissionError::DeadlineInfeasible {
                estimated_ns: 2,
                deadline_ns: 1,
            },
            AdmissionError::RateLimited,
            AdmissionError::UnknownTenant(7),
            AdmissionError::QueueFull,
            AdmissionError::Shed,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
