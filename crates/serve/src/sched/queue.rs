//! The ready queue: earliest-deadline-first with priority tiers and
//! aging, arbitrated across tenants by deficit round robin.
//!
//! Dispatch order composes three policies, strongest first:
//!
//! 1. **Priority tiers.** The globally lowest *effective* tier goes
//!    first. An entry's effective tier starts at its submitted tier and
//!    drops one level per configured aging interval spent waiting, so
//!    low-priority work is delayed under contention but never starved.
//! 2. **Deficit round robin across tenants.** Among tenants holding
//!    work at the winning tier, a classic DRR pass picks the lane:
//!    each top-up round credits `quantum × weight`, each dispatch costs
//!    one credit, so backlogged tenants' throughput shares converge to
//!    their weight ratio.
//! 3. **EDF within the lane.** The chosen tenant dispatches its
//!    earliest-deadline entry (deadline-free entries sort last, FIFO by
//!    submission among themselves).
//!
//! A full queue sheds by rank, not arrival: an incoming entry that
//! outranks (strictly lower effective tier than) the worst queued entry
//! evicts it; otherwise the incoming entry is rejected. Entries whose
//! deadline passes while queued are drained as `expired` at dispatch —
//! they cost a queue slot while waiting but never reach an array.
//!
//! All mutation takes an explicit `now_ns` stamp (the telemetry epoch
//! timeline), so ordering, aging and expiry are deterministic in tests;
//! only the blocking [`ReadyQueue::next_batch`] touches the wall clock,
//! and only for its batch-formation timeout — mirroring
//! [`collect_batch`](crate::batch::collect_batch)'s semantics.

use crate::batch::BatchPolicy;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One queued entry.
#[derive(Debug)]
struct Entry<T> {
    item: T,
    tier: u8,
    deadline_ns: Option<u64>,
    enqueued_ns: u64,
    seq: u64,
}

impl<T> Entry<T> {
    /// Effective tier after aging: one level of promotion per
    /// `aging_ns` spent waiting (aging_ns = 0 disables promotion).
    fn eff_tier(&self, now_ns: u64, aging_ns: u64) -> u8 {
        if aging_ns == 0 {
            return self.tier;
        }
        let waited = now_ns.saturating_sub(self.enqueued_ns);
        let promoted = (waited / aging_ns).min(u64::from(self.tier));
        self.tier - promoted as u8
    }

    /// Dispatch key within a lane: lower sorts first.
    fn key(&self, now_ns: u64, aging_ns: u64) -> (u8, u64, u64) {
        (
            self.eff_tier(now_ns, aging_ns),
            self.deadline_ns.unwrap_or(u64::MAX),
            self.seq,
        )
    }
}

/// One tenant's lane: its pending entries and DRR credit.
#[derive(Debug)]
struct Lane<T> {
    entries: Vec<Entry<T>>,
    weight: f64,
    deficit: f64,
}

// Derived `Default` would demand `T: Default`; lanes never hold a
// default item, so implement it by hand.
impl<T> Default for Lane<T> {
    fn default() -> Self {
        Lane {
            entries: Vec::new(),
            weight: 1.0,
            deficit: 0.0,
        }
    }
}

#[derive(Debug)]
struct Inner<T> {
    lanes: Vec<Lane<T>>,
    len: usize,
    seq: u64,
    cursor: usize,
    closed: bool,
}

/// Outcome of a successful [`ReadyQueue::push`].
#[derive(Debug, PartialEq)]
pub enum Pushed<T> {
    /// Queued; no one was displaced.
    Queued,
    /// Queued by evicting this lower-ranked victim (shed it).
    Displaced(T),
}

/// Why a [`ReadyQueue::push`] failed; the item comes back.
#[derive(Debug, PartialEq)]
pub enum PushError<T> {
    /// Queue full and the entry outranked nothing.
    Full(T),
    /// Queue closed for shutdown.
    Closed(T),
}

/// One dispatched entry's provenance, alongside the item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Popped {
    /// Lane (tenant index) the entry came from.
    pub lane: usize,
    /// Whether the entry's deadline had already passed at dispatch.
    pub expired: bool,
}

/// A batch drained by [`ReadyQueue::next_batch`]: dispatchable entries
/// plus the ones whose deadline expired in queue.
#[derive(Debug)]
pub struct Drained<T> {
    /// Entries to execute, in dispatch order.
    pub batch: Vec<T>,
    /// Entries shed at dispatch: their deadline passed while queued.
    pub expired: Vec<T>,
}

/// The multi-tenant ready queue (see the module docs for the dispatch
/// discipline).
#[derive(Debug)]
pub struct ReadyQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
    quantum: f64,
    aging_ns: u64,
}

impl<T> ReadyQueue<T> {
    /// A queue bounding `capacity` entries, crediting `quantum ×
    /// weight` per DRR round, promoting one tier per `aging_ns` waited
    /// (0 disables aging).
    pub fn new(capacity: usize, quantum: f64, aging_ns: u64) -> ReadyQueue<T> {
        ReadyQueue {
            inner: Mutex::new(Inner {
                lanes: Vec::new(),
                len: 0,
                seq: 0,
                cursor: 0,
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            quantum: quantum.max(1e-6),
            aging_ns,
        }
    }

    /// Queued entries right now.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ready queue poisoned").len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` on tenant lane `lane` (its registry index) at
    /// submitted tier `tier`, refreshing the lane's DRR `weight`. On a
    /// full queue the entry evicts the worst queued entry if it
    /// strictly outranks it (lower effective tier), else bounces.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] or [`PushError::Closed`], returning the item.
    pub fn push(
        &self,
        item: T,
        lane: usize,
        weight: f64,
        tier: u8,
        deadline_ns: Option<u64>,
        now_ns: u64,
    ) -> Result<Pushed<T>, PushError<T>> {
        let mut inner = self.inner.lock().expect("ready queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.lanes.len() <= lane {
            inner.lanes.resize_with(lane + 1, Lane::default);
        }
        inner.lanes[lane].weight = weight.max(1e-3);
        let mut displaced = None;
        if inner.len >= self.capacity {
            match self.worst_locked(&inner, now_ns) {
                Some((victim_lane, pos, victim_tier)) if tier < victim_tier => {
                    let entry = inner.lanes[victim_lane].entries.swap_remove(pos);
                    inner.len -= 1;
                    displaced = Some(entry.item);
                }
                _ => return Err(PushError::Full(item)),
            }
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.lanes[lane].entries.push(Entry {
            item,
            tier,
            deadline_ns,
            enqueued_ns: now_ns,
            seq,
        });
        inner.len += 1;
        self.available.notify_one();
        Ok(match displaced {
            Some(victim) => Pushed::Displaced(victim),
            None => Pushed::Queued,
        })
    }

    /// The worst-ranked queued entry: highest effective tier, then
    /// latest deadline, then newest. Returns `(lane, position, tier)`.
    fn worst_locked(&self, inner: &Inner<T>, now_ns: u64) -> Option<(usize, usize, u8)> {
        inner
            .lanes
            .iter()
            .enumerate()
            .flat_map(|(l, lane)| {
                lane.entries
                    .iter()
                    .enumerate()
                    .map(move |(p, e)| (l, p, e.key(now_ns, self.aging_ns)))
            })
            .max_by_key(|&(_, _, key)| key)
            .map(|(l, p, key)| (l, p, key.0))
    }

    /// Dispatches one entry per the tier → DRR → EDF discipline.
    /// Non-blocking; `None` when empty.
    pub fn pop(&self, now_ns: u64) -> Option<(T, Popped)> {
        let mut inner = self.inner.lock().expect("ready queue poisoned");
        self.pop_locked(&mut inner, now_ns)
    }

    fn pop_locked(&self, inner: &mut Inner<T>, now_ns: u64) -> Option<(T, Popped)> {
        if inner.len == 0 {
            return None;
        }
        // The winning tier: globally lowest effective tier on offer.
        let best_tier = inner
            .lanes
            .iter()
            .flat_map(|l| l.entries.iter())
            .map(|e| e.eff_tier(now_ns, self.aging_ns))
            .min()
            .expect("len > 0");
        // DRR among the lanes competing at that tier. Each failed full
        // scan credits every competing lane, so the loop terminates:
        // some deficit reaches 1.0 within ⌈1/(quantum·min weight)⌉
        // rounds.
        loop {
            let n = inner.lanes.len();
            let mut competing = false;
            for off in 0..n {
                let idx = (inner.cursor + off) % n;
                let lane = &inner.lanes[idx];
                if !lane
                    .entries
                    .iter()
                    .any(|e| e.eff_tier(now_ns, self.aging_ns) == best_tier)
                {
                    continue;
                }
                competing = true;
                if lane.deficit < 1.0 {
                    continue;
                }
                let lane = &mut inner.lanes[idx];
                lane.deficit -= 1.0;
                let pos = lane
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.key(now_ns, self.aging_ns))
                    .map(|(p, _)| p)
                    .expect("competing lane is non-empty");
                let entry = lane.entries.swap_remove(pos);
                if lane.entries.is_empty() {
                    // Classic DRR: an emptied lane forfeits its credit,
                    // so idle tenants cannot hoard bandwidth.
                    lane.deficit = 0.0;
                }
                inner.len -= 1;
                // Stay on this lane while its credit lasts.
                inner.cursor = idx;
                let expired = entry.deadline_ns.is_some_and(|d| d <= now_ns);
                return Some((entry.item, Popped { lane: idx, expired }));
            }
            debug_assert!(competing, "best_tier came from a queued entry");
            // Top-up round for every lane competing at the winning
            // tier; rotate the cursor so equal credits alternate lanes.
            for lane in inner.lanes.iter_mut() {
                if lane
                    .entries
                    .iter()
                    .any(|e| e.eff_tier(now_ns, self.aging_ns) == best_tier)
                {
                    lane.deficit += self.quantum * lane.weight;
                }
            }
            inner.cursor = (inner.cursor + 1) % n.max(1);
        }
    }

    /// Blocks for the next batch under `policy`, stamping pops with
    /// `now()` (epoch nanoseconds). Mirrors
    /// [`collect_batch`](crate::batch::collect_batch): waits for the
    /// first entry, then drains until the batch is full or `max_wait`
    /// elapses. Entries that expired in queue are split out and do not
    /// count toward the batch. Returns `None` once closed *and* empty.
    pub fn next_batch(&self, policy: &BatchPolicy, now: impl Fn() -> u64) -> Option<Drained<T>> {
        let max_batch = policy.max_batch.max(1);
        let mut inner = self.inner.lock().expect("ready queue poisoned");
        loop {
            while inner.len == 0 {
                if inner.closed {
                    return None;
                }
                inner = self.available.wait(inner).expect("ready queue poisoned");
            }
            let deadline = Instant::now() + policy.max_wait;
            let mut batch = Vec::new();
            let mut expired = Vec::new();
            loop {
                while batch.len() < max_batch {
                    match self.pop_locked(&mut inner, now()) {
                        Some((item, info)) if info.expired => expired.push(item),
                        Some((item, _)) => batch.push(item),
                        None => break,
                    }
                }
                if batch.len() >= max_batch || inner.closed {
                    break;
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let (guard, timeout) = self
                    .available
                    .wait_timeout(inner, remaining)
                    .expect("ready queue poisoned");
                inner = guard;
                if timeout.timed_out() && inner.len == 0 {
                    break;
                }
            }
            if !batch.is_empty() || !expired.is_empty() {
                return Some(Drained { batch, expired });
            }
            // Nothing materialized (raced pops / spurious wake): loop.
        }
    }

    /// Closes the queue: further pushes fail, blocked consumers drain
    /// what is queued and then observe shutdown.
    pub fn close(&self) {
        self.inner.lock().expect("ready queue poisoned").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn queue(capacity: usize) -> ReadyQueue<u64> {
        ReadyQueue::new(capacity, 1.0, 0)
    }

    #[test]
    fn single_lane_pops_in_edf_order() {
        let q = queue(16);
        for (item, deadline) in [(1u64, 500), (2, 100), (3, 900), (4, 300)] {
            q.push(item, 0, 1.0, 1, Some(deadline), 0).unwrap();
        }
        // No-deadline entries sort after every deadline, FIFO among
        // themselves.
        q.push(5, 0, 1.0, 1, None, 0).unwrap();
        q.push(6, 0, 1.0, 1, None, 0).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.pop(10).map(|(i, _)| i)).collect();
        assert_eq!(order, vec![2, 4, 1, 3, 5, 6]);
        assert!(q.is_empty());
    }

    #[test]
    fn priority_tiers_outrank_deadlines() {
        let q = queue(16);
        q.push(1, 0, 1.0, 2, Some(10), 0).unwrap(); // low tier, urgent
        q.push(2, 0, 1.0, 0, Some(900), 0).unwrap(); // high tier, relaxed
        q.push(3, 0, 1.0, 1, Some(500), 0).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.pop(5).map(|(i, _)| i)).collect();
        assert_eq!(order, vec![2, 3, 1], "tier first, EDF within tier");
    }

    #[test]
    fn drr_shares_follow_weights() {
        let q = queue(256);
        // Lane 0 weight 3, lane 1 weight 1, same tier, no deadlines.
        for i in 0..60u64 {
            q.push(i, 0, 3.0, 1, None, 0).unwrap();
            q.push(1000 + i, 1, 1.0, 1, None, 0).unwrap();
        }
        let mut counts = [0usize; 2];
        for _ in 0..40 {
            let (_, info) = q.pop(0).unwrap();
            counts[info.lane] += 1;
        }
        assert_eq!(counts[0] + counts[1], 40);
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!(
            (ratio - 3.0).abs() <= 0.45,
            "3:1 weights → {counts:?} (ratio {ratio})"
        );
    }

    #[test]
    fn aging_promotes_waiting_low_tier_work() {
        let aging_ns = 100;
        let q = ReadyQueue::<u64>::new(64, 1.0, aging_ns);
        q.push(7, 0, 1.0, 2, None, 0).unwrap(); // low tier at t=0
        q.push(8, 0, 1.0, 0, None, 0).unwrap(); // high tier
                                                // At t=10 the high-tier entry still wins.
        assert_eq!(q.pop(10).unwrap().0, 8);
        q.push(9, 0, 1.0, 0, None, 250).unwrap();
        // At t=250 the old low-tier entry has aged 2 levels → tier 0,
        // and its seq is older than the fresh high-tier entry.
        assert_eq!(q.pop(250).unwrap().0, 7, "aged entry dispatches first");
        assert_eq!(q.pop(250).unwrap().0, 9);
    }

    #[test]
    fn full_queue_sheds_by_rank() {
        let q = queue(2);
        q.push(1, 0, 1.0, 2, None, 0).unwrap();
        q.push(2, 0, 1.0, 1, None, 0).unwrap();
        // Equal-tier entry bounces: it outranks nothing.
        assert_eq!(q.push(3, 0, 1.0, 2, None, 0), Err(PushError::Full(3)));
        // Higher-priority entry evicts the worst (tier 2) entry.
        assert_eq!(q.push(4, 0, 1.0, 0, None, 0), Ok(Pushed::Displaced(1)));
        assert_eq!(q.len(), 2);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop(0).map(|(i, _)| i)).collect();
        assert_eq!(order, vec![4, 2]);
    }

    #[test]
    fn expired_entries_surface_at_dispatch() {
        let q = queue(16);
        q.push(1, 0, 1.0, 1, Some(50), 0).unwrap();
        q.push(2, 0, 1.0, 1, Some(500), 0).unwrap();
        let policy = BatchPolicy {
            max_batch: 4,
            max_wait: Duration::ZERO,
        };
        let drained = q.next_batch(&policy, || 100).unwrap();
        assert_eq!(drained.expired, vec![1], "deadline 50 expired at t=100");
        assert_eq!(drained.batch, vec![2]);
    }

    #[test]
    fn next_batch_blocks_then_drains_and_close_shuts_down() {
        let q = std::sync::Arc::new(queue(16));
        let policy = BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_millis(50),
        };
        let consumer = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(d) = q.next_batch(&policy, || 0) {
                    seen.extend(d.batch);
                }
                seen
            })
        };
        for i in 0..6u64 {
            q.push(i, 0, 1.0, 1, None, 0).unwrap();
        }
        q.close();
        assert_eq!(q.push(9, 0, 1.0, 1, None, 0), Err(PushError::Closed(9)));
        let mut seen = consumer.join().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>(), "close drains the queue");
    }
}
