//! Per-request latency accounting and server-level aggregates.

use crate::plan::CacheStats;
use crate::sched::TenantSnapshot;
use eyeriss_telemetry::HistogramSnapshot;
use std::time::Duration;

/// Where one request's latency went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Submission to batch dispatch (queueing + batch formation wait).
    pub queue: Duration,
    /// Plan-search time charged to this request's batch (zero on full
    /// plan-cache hits).
    pub compile: Duration,
    /// Cluster execution time of the batch (shared by its members).
    pub execute: Duration,
}

impl LatencyBreakdown {
    /// End-to-end latency.
    pub fn total(&self) -> Duration {
        self.queue + self.compile + self.execute
    }
}

/// One completed request, as recorded by the worker that executed it.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Request id (submission order).
    pub id: u64,
    /// Size of the batch this request rode in.
    pub batch_size: usize,
    /// Latency breakdown.
    pub latency: LatencyBreakdown,
    /// Simulated cluster cycles of the batch (all stages).
    pub sim_cycles: u64,
}

/// Nearest-rank percentile of `samples` (`q` in `[0, 1]`), `ZERO` when
/// empty. Sorts a copy; fine for end-of-run reporting.
pub fn percentile(samples: &[Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted_percentile(&sorted, q)
}

/// Nearest-rank percentile of an already-sorted slice (`ZERO` when
/// empty) — the shared kernel of [`percentile`] and
/// [`ServerStats::latency_summary`], so multi-quantile aggregation
/// sorts exactly once.
fn sorted_percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Mean / p50 / p99 of end-to-end latency, computed from **one** totals
/// vector and **one** sort — ask for this instead of calling
/// [`ServerStats::p50`], [`ServerStats::p99`] and
/// [`ServerStats::mean_latency`] separately (each of those builds and
/// sorts its own copy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Requests aggregated.
    pub count: usize,
    /// Mean end-to-end latency.
    pub mean: Duration,
    /// Median end-to-end latency.
    pub p50: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99: Duration,
}

/// Everything a server measured over its lifetime, returned by
/// [`crate::Server::shutdown`].
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// One record per completed request.
    pub records: Vec<RequestRecord>,
    /// Wall-clock time from server start to shutdown.
    pub elapsed: Duration,
    /// Plan-cache hit/miss counters.
    pub cache: CacheStats,
}

impl ServerStats {
    /// Completed request count.
    pub fn completed(&self) -> usize {
        self.records.len()
    }

    /// Completed requests per second of server lifetime.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.completed() as f64 / secs
        }
    }

    fn totals(&self) -> Vec<Duration> {
        self.records.iter().map(|r| r.latency.total()).collect()
    }

    /// Mean, p50 and p99 end-to-end latency from a single totals build
    /// and sort. `records` is public and may have been filtered by the
    /// caller, so nothing is cached — one call aggregates the records
    /// as they are now.
    pub fn latency_summary(&self) -> LatencySummary {
        let mut totals = self.totals();
        totals.sort_unstable();
        let count = totals.len();
        if count == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            count,
            mean: totals.iter().sum::<Duration>() / count as u32,
            p50: sorted_percentile(&totals, 0.50),
            p99: sorted_percentile(&totals, 0.99),
        }
    }

    /// Median end-to-end latency (one statistic; for several, use
    /// [`ServerStats::latency_summary`]).
    pub fn p50(&self) -> Duration {
        self.latency_summary().p50
    }

    /// 99th-percentile end-to-end latency (one statistic; for several,
    /// use [`ServerStats::latency_summary`]).
    pub fn p99(&self) -> Duration {
        self.latency_summary().p99
    }

    /// Mean end-to-end latency (one statistic; for several, use
    /// [`ServerStats::latency_summary`]).
    pub fn mean_latency(&self) -> Duration {
        self.latency_summary().mean
    }

    /// Mean time spent queued (batch-formation wait included).
    pub fn mean_queue(&self) -> Duration {
        if self.records.is_empty() {
            return Duration::ZERO;
        }
        self.records
            .iter()
            .map(|r| r.latency.queue)
            .sum::<Duration>()
            / self.records.len() as u32
    }

    /// Largest batch any request rode in.
    pub fn max_batch(&self) -> usize {
        self.records.iter().map(|r| r.batch_size).max().unwrap_or(0)
    }

    /// Mean batch size over completed requests.
    pub fn mean_batch(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.batch_size).sum::<usize>() as f64 / self.records.len() as f64
    }
}

/// A live, point-in-time view of a running [`crate::Server`] from
/// [`crate::Server::snapshot`] — available **while the server runs**,
/// unlike [`ServerStats`], which exists only after
/// [`crate::Server::shutdown`].
///
/// Latency statistics come from the server's streaming log-bucketed
/// histograms, so [`ServerSnapshot::p50`] / [`ServerSnapshot::p99`] are
/// estimates within [`eyeriss_telemetry::RELATIVE_ERROR`] of the exact
/// nearest-rank percentiles over the same requests (values below
/// [`eyeriss_telemetry::EXACT_BELOW`] nanoseconds are exact).
#[derive(Debug, Clone, Default)]
pub struct ServerSnapshot {
    /// Wall-clock time since the server started.
    pub elapsed: Duration,
    /// Requests completed so far.
    pub completed: u64,
    /// Requests shed by [`crate::Server::try_submit`] on a full queue.
    pub shed: u64,
    /// Requests currently waiting in the submission queue (or picked up
    /// by the batcher but not yet dispatched).
    pub queue_depth: i64,
    /// Batches currently executing on workers.
    pub inflight_batches: i64,
    /// Workers the server was configured with.
    pub workers: usize,
    /// Workers currently alive (configured minus retired; a worker
    /// retires when every array in its cluster is quarantined).
    pub live_workers: i64,
    /// Workers restarted by the supervisor after a panic.
    pub worker_restarts: u64,
    /// Requests re-queued after a detected transient fault (each retry
    /// of an n-request batch counts n).
    pub retries: u64,
    /// Admitted requests that failed in execution — worker death or an
    /// exhausted retry budget. Their clients got a typed
    /// [`ServeError`](crate::ServeError), never a hang.
    pub failed: u64,
    /// Arrays quarantined across the worker pool after persistent
    /// faults.
    pub quarantined_arrays: u64,
    /// Faults the configured [`FaultPlan`](crate::FaultPlan) has
    /// injected so far (zero unless fault injection is enabled).
    pub faults_injected: u64,
    /// Injected compute corruptions the ABFT checksums caught.
    pub faults_detected: u64,
    /// Plan-cache hit/miss counters.
    pub cache: CacheStats,
    /// Streaming queue-stage latency (nanoseconds per request).
    pub queue_ns: HistogramSnapshot,
    /// Streaming compile-stage latency (nanoseconds per request).
    pub compile_ns: HistogramSnapshot,
    /// Streaming execute-stage latency (nanoseconds per request).
    pub execute_ns: HistogramSnapshot,
    /// Streaming end-to-end latency (nanoseconds per request).
    pub total_ns: HistogramSnapshot,
    /// Batch sizes of completed requests.
    pub batch_size: HistogramSnapshot,
    /// Absolute plan-prediction error per request, in simulated cycles
    /// (`|measured − analytic_delay|`; populated only while telemetry
    /// is enabled — attribution is skipped otherwise).
    pub delay_residual: HistogramSnapshot,
    /// Per-tenant counters, in tenant-id order — empty unless the
    /// server runs with a [`SchedConfig`](crate::sched::SchedConfig).
    pub tenants: Vec<TenantSnapshot>,
}

impl ServerSnapshot {
    fn quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.total_ns.quantile(q).unwrap_or(0))
    }

    /// Streaming estimate of the median end-to-end latency so far.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// Streaming estimate of the 99th-percentile end-to-end latency so
    /// far.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Mean end-to-end latency so far.
    pub fn mean_latency(&self) -> Duration {
        Duration::from_nanos(self.total_ns.mean() as u64)
    }

    /// Completed requests per second of server lifetime so far.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Mean batch size over completed requests so far.
    pub fn mean_batch(&self) -> f64 {
        self.batch_size.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn record(id: u64, queue_ms: u64, batch: usize) -> RequestRecord {
        RequestRecord {
            id,
            batch_size: batch,
            latency: LatencyBreakdown {
                queue: ms(queue_ms),
                compile: ms(1),
                execute: ms(2),
            },
            sim_cycles: 100,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&samples, 0.50), ms(50));
        assert_eq!(percentile(&samples, 0.99), ms(99));
        assert_eq!(percentile(&samples, 1.0), ms(100));
        assert_eq!(percentile(&samples, 0.0), ms(1));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        assert_eq!(percentile(&[ms(7)], 0.99), ms(7));
    }

    #[test]
    fn breakdown_totals_add_up() {
        let r = record(0, 10, 4);
        assert_eq!(r.latency.total(), ms(13));
    }

    #[test]
    fn stats_aggregate_records() {
        let stats = ServerStats {
            records: vec![record(0, 0, 1), record(1, 10, 2), record(2, 20, 2)],
            elapsed: Duration::from_secs(2),
            cache: CacheStats { hits: 3, misses: 1 },
        };
        assert_eq!(stats.completed(), 3);
        assert_eq!(stats.throughput_rps(), 1.5);
        assert_eq!(stats.p50(), ms(13));
        let summary = stats.latency_summary();
        assert_eq!(
            (summary.count, summary.mean, summary.p50, summary.p99),
            (3, stats.mean_latency(), stats.p50(), stats.p99())
        );
        assert_eq!(stats.max_batch(), 2);
        assert!((stats.mean_batch() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.mean_queue(), ms(10));
        assert!(stats.p99() >= stats.p50());
        assert_eq!(stats.cache.hit_rate(), 0.75);
    }

    #[test]
    fn empty_stats_are_defined() {
        let stats = ServerStats {
            records: Vec::new(),
            elapsed: Duration::ZERO,
            cache: CacheStats::default(),
        };
        assert_eq!(stats.completed(), 0);
        assert_eq!(stats.throughput_rps(), 0.0);
        assert_eq!(stats.p50(), Duration::ZERO);
        assert_eq!(stats.mean_latency(), Duration::ZERO);
        assert_eq!(stats.mean_batch(), 0.0);
        assert_eq!(stats.latency_summary(), LatencySummary::default());
        let snap = ServerSnapshot::default();
        assert_eq!(snap.p50(), Duration::ZERO);
        assert_eq!(snap.throughput_rps(), 0.0);
        assert_eq!(snap.mean_batch(), 0.0);
    }
}
