//! `eyeriss-serve` — an inference-serving runtime over the Eyeriss
//! reproduction.
//!
//! The paper optimizes per-layer dataflow mappings offline and runs them
//! on one fixed 168-PE array; sustained serving throughput instead comes
//! from *amortizing* configuration cost and keeping every array busy
//! across requests (the direction Eyeriss v2 and the ROADMAP north star
//! point at). This crate turns the workspace's mapping search
//! (`eyeriss-dataflow`), bit-exact simulator (`eyeriss-sim`) and
//! multi-array partitioning (`eyeriss-cluster`) into a service:
//!
//! * [`plan`] — the **plan compiler**: runs the `(partition, mapping)`
//!   co-optimization once per distinct layer problem and stores the
//!   immutable [`ClusterPlan`](eyeriss_cluster::ClusterPlan) in a
//!   content-keyed [`PlanCache`], so repeated shapes (VGG's stacked 3×3
//!   layers) and repeated requests never re-search.
//! * [`batch`] — the **dynamic batcher**: coalesces compatible queued
//!   requests up to a batch-size/deadline bound into one cluster
//!   execution.
//! * [`runtime`] — the **scheduler**: an MPSC submission queue with
//!   backpressure feeding a pool of workers, each executing batches on a
//!   private multi-array [`Cluster`](eyeriss_cluster::Cluster) from
//!   cached plans via `Cluster::execute`, with per-request
//!   queue/compile/execute latency accounting.
//! * [`persist`] — **plan-cache persistence**: compiled plans saved to
//!   disk under a versioned schema and reloaded bit-exactly by a cold
//!   process, so serving resumes with zero mapping searches.
//! * [`metrics`] — latency breakdowns, p50/p99 percentiles and
//!   server-lifetime statistics.
//! * [`attrib`] — per-request **energy/delay attribution**: each traced
//!   request carries the executed plan's
//!   [`CostReport`](eyeriss_arch::cost::CostReport) plus the residual
//!   between simulated and predicted cycles, feeding the
//!   `serve.delay_residual` histogram and the
//!   [`SloMonitor`] flight ring.
//! * [`sched`] — **SLO-aware multi-tenant scheduling**: a tenant
//!   registry (weights, priorities, rate limits), an admission
//!   controller that rejects infeasible deadlines up front and sheds
//!   lowest-tier work while the SLO monitor burns, and a
//!   deadline/priority ready queue arbitrated by deficit round robin.
//!   Opt in with [`SchedConfig`] on [`ServeConfig::sched`]; without it
//!   the legacy FIFO path is untouched.
//! * [`recover`] — **fault tolerance**: workers run batches under
//!   `catch_unwind` with a supervisor restarting the dead; ABFT
//!   checksum mismatches and injected crashes retry with bounded
//!   backoff ([`RecoveryPolicy`]) through a re-queue-capable
//!   [`BatchQueue`]; persistently faulty arrays are quarantined and the
//!   worker re-plans onto the healthy subset. Deterministic fault
//!   injection opts in via [`ServeConfig::faults`] with a
//!   [`FaultPlan`]; ABFT verification via [`ServeConfig::abft`]. Both
//!   default off and cost nothing when disabled.
//!
//! # Example
//!
//! ```
//! use eyeriss_serve::{BatchPolicy, ServeConfig, Server};
//! use eyeriss_nn::network::NetworkBuilder;
//! use eyeriss_nn::synth;
//! use std::time::Duration;
//!
//! let net = NetworkBuilder::new(3, 19)
//!     .conv("C1", 8, 3, 2)?
//!     .fully_connected("FC", 10)?
//!     .build(7);
//! let shape = net.stages()[0].shape;
//! let golden = net.clone();
//!
//! let mut cfg = ServeConfig::new();
//! cfg.policy = BatchPolicy { max_batch: 4, max_wait: Duration::from_millis(5) };
//! let server = Server::start(net, cfg);
//!
//! let input = synth::ifmap(&shape, 1, 42);
//! let response = server.submit(input.clone())?.wait()?;
//! assert_eq!(response.output, golden.forward(1, &input)); // bit-exact
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.completed(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod attrib;
pub mod batch;
pub mod error;
pub mod metrics;
pub mod persist;
pub mod plan;
pub mod recover;
pub mod runtime;
pub mod sched;

pub use attrib::Attribution;
pub use batch::BatchPolicy;
pub use error::ServeError;
pub use eyeriss_sim::fault::{FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultWindow};
pub use eyeriss_telemetry::{FlightDump, FlightRecord, SloMonitor, SloSignal, SloSpec};
pub use metrics::{
    percentile, LatencyBreakdown, LatencySummary, RequestRecord, ServerSnapshot, ServerStats,
};
pub use plan::{CacheStats, CompiledPlan, Footprint, PlanCache, PlanCompiler, PlanKey, StagePlan};
pub use recover::{BatchQueue, RecoveryPolicy};
pub use runtime::{RequestHandle, Response, ServeConfig, Server, SubmitOptions};
pub use sched::{
    AdmissionError, Priority, RateLimit, SchedConfig, TenantId, TenantSnapshot, TenantSpec,
};
