//! The plan compiler and content-keyed plan cache.
//!
//! The Eyeriss paper optimizes mappings per layer shape *offline*
//! (Section VI-C); a serving system must amortize that optimization
//! across requests. [`PlanCompiler`] runs the
//! `eyeriss_cluster::plan_layer` search — partition × per-array mapping
//! co-optimization — once per distinct problem and stores the resulting
//! immutable [`ClusterPlan`] in a [`PlanCache`] keyed by problem
//! *content* `(layer shape, batch, array count, dataflow, objective,
//! hardware fingerprint)`. Repeated shapes (all of VGG-16's stacked 3×3
//! stages) and repeated requests then never re-search: the runtime
//! executes cached plans via [`eyeriss_cluster::Cluster::execute`].

use crate::error::ServeError;
use eyeriss_arch::cost::{table_iv_shared, CostDescriptor, CostModel, CostReport};
use eyeriss_arch::AcceleratorConfig;
use eyeriss_cluster::{plan_layer, ClusterPlan, SharedDram};
use eyeriss_dataflow::registry::builtin_shared;
use eyeriss_dataflow::search::Objective;
use eyeriss_dataflow::{Dataflow, DataflowId, DataflowKind};
use eyeriss_nn::network::Network;
use eyeriss_nn::shape::NamedLayer;
use eyeriss_nn::{LayerKind, LayerProblem, LayerShape};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Content key of one compiled layer plan. Two problems collide exactly
/// when the search would provably return the same plan: same layer
/// shape, batch, cluster width, mapping space, objective, per-array
/// hardware and cost model — the cost model travels as its
/// [`CostDescriptor`] (identity + exact numeric fingerprint), so models
/// with distinct fingerprints never cross-hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    pub(crate) shape: LayerShape,
    pub(crate) n: usize,
    pub(crate) arrays: usize,
    pub(crate) dataflow: DataflowId,
    pub(crate) objective: Objective,
    pub(crate) grid: (usize, usize),
    pub(crate) rf_bits: u64,
    pub(crate) buffer_bits: u64,
    pub(crate) cost: CostDescriptor,
}

impl PlanKey {
    /// Builds the content key for one layer problem.
    pub fn new(
        problem: &LayerProblem,
        arrays: usize,
        dataflow: DataflowId,
        objective: Objective,
        hw: &AcceleratorConfig,
        cost: &dyn CostModel,
    ) -> Self {
        PlanKey {
            shape: problem.shape,
            n: problem.batch,
            arrays,
            dataflow,
            objective,
            grid: (hw.grid.rows, hw.grid.cols),
            rf_bits: hw.rf_bytes_per_pe.to_bits(),
            buffer_bits: hw.buffer_bytes.to_bits(),
            cost: cost.descriptor(),
        }
    }
}

/// Hit/miss counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the full plan search.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A thread-safe, content-keyed cache of compiled [`ClusterPlan`]s.
///
/// Shared via `Arc` between the compiler and every serving worker; the
/// expensive search runs *outside* the lock, so concurrent workers are
/// never serialized behind another worker's compilation (a race on the
/// same key wastes one duplicate search, kept deliberately for
/// simplicity — both racers insert identical immutable plans).
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Arc<ClusterPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Returns the cached plan for `key`, or computes, stores and
    /// returns it via `compile`.
    ///
    /// # Errors
    ///
    /// Propagates `compile`'s error; failures are not cached.
    pub fn get_or_compile(
        &self,
        key: PlanKey,
        compile: impl FnOnce() -> Result<ClusterPlan, ServeError>,
    ) -> Result<Arc<ClusterPlan>, ServeError> {
        if let Some(hit) = self
            .plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        let plan = Arc::new(compile()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut plans = self.plans.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(Arc::clone(plans.entry(key).or_insert(plan)))
    }

    /// Number of distinct plans stored.
    pub fn len(&self) -> usize {
        self.plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no plan has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// A point-in-time copy of every `(key, plan)` entry (for
    /// persistence; plans are shared, not cloned).
    pub(crate) fn snapshot(&self) -> Vec<(PlanKey, Arc<ClusterPlan>)> {
        self.plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (*k, Arc::clone(v)))
            .collect()
    }

    /// Inserts one precompiled plan (idempotent for equal keys; counts
    /// neither as hit nor miss — reloading is not searching).
    pub(crate) fn insert(&self, key: PlanKey, plan: Arc<ClusterPlan>) {
        self.plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(plan);
    }
}

/// On-chip/working-set footprint of one layer at a given batch, in
/// 16-bit words (what a scheduler would reserve in the global buffer
/// hierarchy for staging this stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// Ifmap words (`N·C·H²`).
    pub ifmap_words: u64,
    /// Filter words (`M·C·R²`; zero for POOL).
    pub filter_words: u64,
    /// Ofmap words (`N·M·E²`).
    pub ofmap_words: u64,
}

impl Footprint {
    pub(crate) fn of(shape: &LayerShape, n: usize) -> Self {
        Footprint {
            ifmap_words: shape.ifmap_words(n),
            filter_words: match shape.kind {
                LayerKind::Pool => 0,
                _ => shape.filter_words(),
            },
            ofmap_words: shape.ofmap_words(n),
        }
    }

    /// Total words across the three tensors.
    pub fn total_words(&self) -> u64 {
        self.ifmap_words + self.filter_words + self.ofmap_words
    }
}

/// One stage of a [`CompiledPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum StagePlan {
    /// A weighted CONV/FC stage with its compiled cluster plan.
    Layer {
        /// Stage name (e.g. `"CONV1"`).
        name: String,
        /// The stage's layer shape.
        shape: LayerShape,
        /// Whether ReLU follows the stage.
        relu: bool,
        /// The immutable compiled `(partition, mapping)` plan.
        plan: Arc<ClusterPlan>,
        /// Working-set footprint at the compiled batch.
        footprint: Footprint,
    },
    /// A weight-free POOL stage (executed per-array, never partitioned).
    Pool {
        /// Stage name.
        name: String,
        /// The pool shape.
        shape: LayerShape,
    },
}

impl StagePlan {
    /// The stage's name.
    pub fn name(&self) -> &str {
        match self {
            StagePlan::Layer { name, .. } | StagePlan::Pool { name, .. } => name,
        }
    }
}

/// An immutable, fully compiled execution plan for one network at one
/// batch size on one cluster configuration.
///
/// Serializable through [`crate::persist`] with a versioned schema.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPlan {
    /// Batch size the plan was compiled for.
    pub batch: usize,
    /// Cluster width the plan was compiled for.
    pub arrays: usize,
    /// Per-stage plans, in network order.
    pub stages: Vec<StagePlan>,
    /// Wall-clock time of the whole compile, dominated by plan searches
    /// on cache misses (a fully warmed compile still pays the cache
    /// lookups and stage assembly, typically microseconds).
    pub compile_time: Duration,
    /// Distinct searches this compile ran (cache misses).
    pub searched: u64,
    /// Stages answered from the plan cache.
    pub cached: u64,
}

impl CompiledPlan {
    /// Summed analytic cluster delay across weighted stages (the model's
    /// per-layer critical-path delay, in MAC-time units) — the capacity
    /// estimate an admission controller would use.
    pub fn analytic_delay(&self) -> f64 {
        self.stages
            .iter()
            .filter_map(|s| match s {
                StagePlan::Layer { plan, .. } => Some(plan.delay),
                StagePlan::Pool { .. } => None,
            })
            .sum()
    }

    /// Summed analytic energy across weighted stages.
    pub fn analytic_energy(&self) -> f64 {
        self.stages
            .iter()
            .filter_map(|s| match s {
                StagePlan::Layer { plan, .. } => Some(plan.energy),
                StagePlan::Pool { .. } => None,
            })
            .sum()
    }

    /// Re-prices the whole compiled network into the unified
    /// [`CostReport`] vocabulary under `cost` (weighted stages
    /// accumulated sequentially; each stage's delay baseline is its
    /// plan's cluster delay).
    pub fn cost_report(&self, cost: &dyn CostModel) -> CostReport {
        let mut total = CostReport::zero(cost.descriptor());
        for s in &self.stages {
            if let StagePlan::Layer { plan, .. } = s {
                total.accumulate(&plan.report(cost));
            }
        }
        total
    }

    /// The largest per-stage working set, in words.
    pub fn peak_footprint_words(&self) -> u64 {
        self.stages
            .iter()
            .filter_map(|s| match s {
                StagePlan::Layer { footprint, .. } => Some(footprint.total_words()),
                StagePlan::Pool { .. } => None,
            })
            .max()
            .unwrap_or(0)
    }
}

/// Compiles layer problems into immutable [`ClusterPlan`]s through a
/// shared [`PlanCache`].
///
/// # Example
///
/// ```
/// use eyeriss_serve::PlanCompiler;
/// use eyeriss_arch::AcceleratorConfig;
/// use eyeriss_nn::LayerShape;
///
/// let compiler = PlanCompiler::new(2, AcceleratorConfig::eyeriss_chip());
/// let shape = LayerShape::conv(16, 8, 11, 3, 2)?;
/// let first = compiler.compile_layer(&shape, 4)?;
/// let again = compiler.compile_layer(&shape, 4)?; // cache hit
/// assert_eq!(first.partition, again.partition);
/// assert_eq!(compiler.cache().stats().hits, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct PlanCompiler {
    hw: AcceleratorConfig,
    cost: Arc<dyn CostModel>,
    dataflow: Arc<dyn Dataflow>,
    objective: Objective,
    arrays: usize,
    shared: SharedDram,
    cache: Arc<PlanCache>,
}

impl std::fmt::Debug for PlanCompiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCompiler")
            .field("hw", &self.hw)
            .field("dataflow", &self.dataflow.id())
            .field("cost", &self.cost.id())
            .field("objective", &self.objective)
            .field("arrays", &self.arrays)
            .finish_non_exhaustive()
    }
}

impl PlanCompiler {
    /// Creates a compiler for a cluster of `arrays` arrays of
    /// configuration `hw`, with the serving defaults: row-stationary
    /// mapping space, energy-delay-product objective, Table IV energy
    /// costs and a shared DRAM channel scaled to the cluster width.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero.
    pub fn new(arrays: usize, hw: AcceleratorConfig) -> Self {
        assert!(arrays > 0, "compiler needs at least one array");
        PlanCompiler {
            hw,
            cost: table_iv_shared(),
            dataflow: builtin_shared(DataflowKind::RowStationary),
            objective: Objective::EnergyDelayProduct,
            arrays,
            shared: SharedDram::scaled(arrays),
            cache: Arc::new(PlanCache::new()),
        }
    }

    /// Overrides the optimization objective.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Overrides the cost model the plan search prices under (any
    /// registered [`CostModel`]). The model's descriptor participates in
    /// plan-cache keys, so compilers pricing under distinct fingerprints
    /// never share plans.
    pub fn with_cost_model(mut self, cost: Arc<dyn CostModel>) -> Self {
        self.cost = cost;
        self
    }

    /// The cost model this compiler prices under.
    pub fn cost_model(&self) -> &Arc<dyn CostModel> {
        &self.cost
    }

    /// Overrides the mapping space (any [`Dataflow`], builtin or
    /// registered).
    pub fn with_dataflow(mut self, dataflow: Arc<dyn Dataflow>) -> Self {
        self.dataflow = dataflow;
        self
    }

    /// The mapping space this compiler plans in.
    pub fn dataflow(&self) -> &Arc<dyn Dataflow> {
        &self.dataflow
    }

    /// Shares an existing plan cache (e.g. across server restarts).
    pub fn with_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The shared plan cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Cluster width this compiler plans for.
    pub fn arrays(&self) -> usize {
        self.arrays
    }

    /// A compiler for a different cluster width sharing this compiler's
    /// cache, cost model, mapping space and objective — the degraded-mode
    /// path: when arrays are quarantined, the runtime re-plans onto the
    /// surviving width. Sharing the cache is sound because [`PlanKey`]
    /// includes the array count, so plans of different widths never
    /// cross-hit; the shared DRAM channel is re-scaled to the new width.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero.
    pub fn resized(&self, arrays: usize) -> Self {
        assert!(arrays > 0, "compiler needs at least one array");
        let mut resized = self.clone();
        resized.arrays = arrays;
        resized.shared = SharedDram::scaled(arrays);
        resized
    }

    /// The per-array hardware configuration.
    pub fn hw(&self) -> &AcceleratorConfig {
        &self.hw
    }

    /// Compiles (or fetches) the plan for one weighted layer at batch
    /// `n`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::NoPlan`] for POOL shapes and for layers with
    /// no feasible `(partition, mapping)` on this cluster.
    pub fn compile_layer(
        &self,
        shape: &LayerShape,
        n: usize,
    ) -> Result<Arc<ClusterPlan>, ServeError> {
        let problem = LayerProblem::new(*shape, n);
        if !problem.is_weighted() {
            return Err(ServeError::NoPlan(
                "POOL stages are executed per-array, not planned".into(),
            ));
        }
        let key = PlanKey::new(
            &problem,
            self.arrays,
            self.dataflow.id(),
            self.objective,
            &self.hw,
            self.cost.as_ref(),
        );
        self.cache.get_or_compile(key, || {
            plan_layer(
                self.dataflow.as_ref(),
                &problem,
                self.arrays,
                &self.hw,
                self.cost.as_ref(),
                &self.shared,
                self.objective,
            )
            .ok_or_else(|| {
                ServeError::NoPlan(format!(
                    "no feasible partition/mapping for {}x{}x{} (batch {n}) on {} arrays",
                    shape.m, shape.c, shape.h, self.arrays
                ))
            })
        })
    }

    /// Compiles a whole network for batch `n`: one plan per weighted
    /// stage (distinct shapes searched once), POOL stages passed through.
    ///
    /// # Errors
    ///
    /// Fails if any weighted stage has no feasible plan.
    pub fn compile_network(&self, net: &Network, n: usize) -> Result<CompiledPlan, ServeError> {
        let before = self.cache.stats();
        let start = Instant::now();
        let mut stages = Vec::with_capacity(net.stages().len());
        for stage in net.stages() {
            stages.push(match stage.shape.kind {
                LayerKind::Pool => StagePlan::Pool {
                    name: stage.name.clone(),
                    shape: stage.shape,
                },
                LayerKind::Conv | LayerKind::FullyConnected => StagePlan::Layer {
                    name: stage.name.clone(),
                    shape: stage.shape,
                    relu: stage.relu,
                    plan: self.compile_layer(&stage.shape, n)?,
                    footprint: Footprint::of(&stage.shape, n),
                },
            });
        }
        let after = self.cache.stats();
        Ok(CompiledPlan {
            batch: n,
            arrays: self.arrays,
            stages,
            compile_time: start.elapsed(),
            searched: after.misses - before.misses,
            cached: after.hits - before.hits,
        })
    }

    /// Compiles a list of named layers (e.g. `eyeriss_nn::vgg::conv_layers`)
    /// at batch `n`, sharing the cache across repeated shapes. Returns
    /// the plans in input order.
    ///
    /// # Errors
    ///
    /// Fails on the first layer with no feasible plan.
    pub fn compile_layers(
        &self,
        layers: &[NamedLayer],
        n: usize,
    ) -> Result<Vec<(String, Arc<ClusterPlan>)>, ServeError> {
        layers
            .iter()
            .map(|l| Ok((l.name.clone(), self.compile_layer(&l.shape, n)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_nn::network::NetworkBuilder;

    fn small_hw() -> AcceleratorConfig {
        AcceleratorConfig {
            grid: eyeriss_arch::GridDims::new(6, 8),
            rf_bytes_per_pe: 512.0,
            buffer_bytes: 32.0 * 1024.0,
        }
    }

    #[test]
    fn repeated_layers_hit_the_cache() {
        let compiler = PlanCompiler::new(2, small_hw());
        let shape = LayerShape::conv(8, 3, 13, 3, 2).unwrap();
        let a = compiler.compile_layer(&shape, 4).unwrap();
        let b = compiler.compile_layer(&shape, 4).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "cache must return the same plan");
        let stats = compiler.cache().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!(compiler.cache().len(), 1);
    }

    #[test]
    fn distinct_batches_and_widths_are_distinct_plans() {
        let cache = Arc::new(PlanCache::new());
        let shape = LayerShape::conv(8, 3, 13, 3, 2).unwrap();
        let two = PlanCompiler::new(2, small_hw()).with_cache(Arc::clone(&cache));
        let four = PlanCompiler::new(4, small_hw()).with_cache(Arc::clone(&cache));
        two.compile_layer(&shape, 2).unwrap();
        two.compile_layer(&shape, 4).unwrap();
        four.compile_layer(&shape, 4).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn network_compile_reports_search_vs_cache_split() {
        let net = NetworkBuilder::new(3, 19)
            .conv("C1", 8, 3, 2)
            .unwrap()
            .conv("C2", 8, 3, 2)
            .unwrap()
            .build(7);
        let compiler = PlanCompiler::new(2, small_hw());
        let first = compiler.compile_network(&net, 2).unwrap();
        assert_eq!(first.stages.len(), 2);
        assert_eq!((first.searched, first.cached), (2, 0));
        // Recompiling the same network is free: every stage hits.
        let second = compiler.compile_network(&net, 2).unwrap();
        assert_eq!((second.searched, second.cached), (0, 2));
        assert!(second.compile_time <= first.compile_time);
        assert!(first.analytic_delay() > 0.0);
        assert!(first.analytic_energy() > 0.0);
        assert!(first.peak_footprint_words() > 0);
    }

    #[test]
    fn pool_shapes_are_rejected_but_networks_pass_them_through() {
        let compiler = PlanCompiler::new(2, small_hw());
        let pool = LayerShape::pool(3, 9, 3, 3).unwrap();
        assert!(matches!(
            compiler.compile_layer(&pool, 1),
            Err(ServeError::NoPlan(_))
        ));
        let net = NetworkBuilder::new(3, 19)
            .conv("C1", 8, 3, 2)
            .unwrap()
            .pool("P1", 3, 2)
            .unwrap()
            .build(7);
        let plan = compiler.compile_network(&net, 2).unwrap();
        assert!(matches!(plan.stages[1], StagePlan::Pool { .. }));
        assert_eq!(plan.stages[1].name(), "P1");
    }

    #[test]
    fn vgg_repeated_shapes_compile_once() {
        // The canonical serving win: VGG-16 has 13 CONV layers but only
        // 9 distinct shapes, so 4 compiles come free.
        let compiler = PlanCompiler::new(1, AcceleratorConfig::eyeriss_chip());
        let layers = eyeriss_nn::vgg::conv_layers();
        let plans = compiler.compile_layers(&layers, 1).unwrap();
        assert_eq!(plans.len(), 13);
        let stats = compiler.cache().stats();
        assert_eq!(stats.misses, 9, "9 distinct VGG CONV shapes");
        assert_eq!(stats.hits, 4, "4 repeated shapes served from cache");
        assert!(stats.hit_rate() > 0.0);
    }
}
