//! Recovery machinery for the supervised serving runtime: the retry /
//! quarantine policy and the batch dispatch queue that supports
//! re-queuing.
//!
//! The runtime's failure model distinguishes three layers:
//!
//! * **transient array faults** (one ABFT checksum mismatch, one
//!   crash) — the batch is re-queued and retried with bounded backoff,
//!   producing bit-exact output on a clean pass;
//! * **persistent array faults** (consecutive strikes reaching
//!   [`RecoveryPolicy::quarantine_after`]) — the array is quarantined,
//!   its worker's cluster re-plans onto the healthy subset, and the
//!   degraded capacity is reflected in admission estimates;
//! * **worker death** (panic) — the supervisor restarts the worker; the
//!   in-flight batch's requests fail with a typed
//!   [`WorkerLost`](crate::ServeError::WorkerLost) rather than a hung
//!   client.
//!
//! [`BatchQueue`] replaces a plain MPSC channel for batch dispatch
//! because recovery needs an operation channels lack: a worker that hit
//! a transient fault must put the batch *back* without deadlocking —
//! [`BatchQueue::requeue`] is front-of-queue and never blocks, even at
//! capacity (re-queued work was already admitted once; refusing it
//! would drop accepted requests).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Retry, backoff and quarantine policy for the serving runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries per batch before its requests fail with the worker's
    /// error. The total attempt budget is `1 + max_retries`.
    pub max_retries: u32,
    /// Base backoff slept before re-queuing a failed batch; attempt `k`
    /// (1-based) sleeps `k × backoff`, capped at 20 × `backoff`.
    pub backoff: Duration,
    /// Consecutive strikes (detected faults without an intervening
    /// clean run) after which an array is quarantined.
    pub quarantine_after: u32,
}

impl RecoveryPolicy {
    /// Serving defaults: three retries, 1 ms base backoff, quarantine
    /// on the second consecutive strike.
    pub fn new() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff: Duration::from_millis(1),
            quarantine_after: 2,
        }
    }

    /// The backoff before re-queueing attempt `attempt` (1-based).
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        self.backoff.saturating_mul(attempt.clamp(1, 20))
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::new()
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue of dispatched batches with three operations a
/// recovery-capable pool needs: blocking bounded [`push`](Self::push)
/// (backpressure toward the batcher), non-blocking front-of-queue
/// [`requeue`](Self::requeue) (retry without deadlock), and blocking
/// [`pop`](Self::pop) that drains remaining items after
/// [`close`](Self::close) before reporting shutdown. All internal locks
/// recover from poisoning: the queue state is a plain `VecDeque`, valid
/// whatever a panicking thread was doing around it.
pub struct BatchQueue<T> {
    state: Mutex<QueueState<T>>,
    capacity: usize,
    /// Signalled when an item arrives or the queue closes (wakes `pop`).
    available: Condvar,
    /// Signalled when an item leaves (wakes bounded `push`).
    space: Condvar,
}

impl<T> BatchQueue<T> {
    /// A queue holding at most `capacity` items (min 1) under `push`.
    pub fn new(capacity: usize) -> Self {
        BatchQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            available: Condvar::new(),
            space: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends `item`, blocking while the queue is at capacity.
    /// Returns `Err(item)` if the queue is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        while state.items.len() >= self.capacity && !state.closed {
            state = self
                .space
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Puts `item` at the *front* of the queue, never blocking and
    /// ignoring capacity: retried work was admitted once already and
    /// jumps ahead of newer batches, bounding its extra latency. Even a
    /// closed queue accepts a requeue — the items behind `close` are
    /// still being drained, and dropping a retry would drop accepted
    /// requests.
    pub fn requeue(&self, item: T) {
        let mut state = self.lock();
        state.items.push_front(item);
        drop(state);
        self.available.notify_one();
    }

    /// Removes the front item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.space.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes fail, pops drain the backlog then
    /// return `None`. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
        self.space.notify_all();
    }

    /// Number of queued items right now.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn fifo_order_with_requeue_at_front() {
        let q = BatchQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.requeue(0);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_reports_shutdown() {
        let q = BatchQueue::new(8);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(9), Err(9), "closed queue rejects pushes");
        q.requeue(0); // retries still land
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn requeue_never_blocks_at_capacity() {
        let q = BatchQueue::new(1);
        q.push(1).unwrap();
        let started = Instant::now();
        q.requeue(0); // over capacity, must not block
        assert!(started.elapsed() < Duration::from_millis(100));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn bounded_push_blocks_until_pop() {
        let q = Arc::new(BatchQueue::new(1));
        q.push(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2))
        };
        // Give the producer time to block on the full queue.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "producer is blocked, not queued");
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap().is_ok());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(BatchQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }

    #[test]
    fn backoff_scales_and_caps() {
        let p = RecoveryPolicy::new();
        assert_eq!(p.backoff_for(1), p.backoff);
        assert_eq!(p.backoff_for(3), p.backoff * 3);
        assert_eq!(p.backoff_for(1000), p.backoff * 20, "capped");
    }
}
