//! Error type for the serving runtime.

use crate::sched::AdmissionError;
use eyeriss_cluster::ClusterError;
use eyeriss_dataflow::DataflowError;
use eyeriss_sim::SimError;
use eyeriss_wire::WireError;
use std::fmt;

/// Why a request could not be compiled, scheduled, executed or persisted.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// No feasible `(partition, mapping)` exists for a layer on the
    /// configured cluster, so no plan can be compiled.
    NoPlan(String),
    /// A request's input tensor does not match the served network.
    Input(String),
    /// The submission queue is full (only returned by the non-blocking
    /// [`crate::Server::try_submit`]; the blocking path waits instead).
    Saturated,
    /// The server is shutting down (or already gone) and the request
    /// cannot be accepted or completed.
    ShutDown,
    /// The worker executing this request died (panic or unrecoverable
    /// fault) before responding, and its retry budget — if any — was
    /// exhausted. The tenant's request is accounted as failed, not
    /// leaked; a supervisor restarts the worker for subsequent traffic.
    WorkerLost,
    /// The scheduling layer rejected the request: infeasible or expired
    /// deadline, rate limit, overload shed, eviction, or an unknown
    /// tenant (only on sched-enabled servers).
    Admission(AdmissionError),
    /// The cluster executor failed on a batch.
    Cluster(ClusterError),
    /// A single-array simulation failed.
    Sim(SimError),
    /// The dataflow layer rejected a plan or params (mismatch, unknown
    /// dataflow).
    Dataflow(DataflowError),
    /// Reading or writing a persisted plan cache failed at the
    /// filesystem level (the path and OS error, rendered).
    Io(String),
    /// A persisted plan cache failed to parse or decode.
    Wire(WireError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NoPlan(m) => write!(f, "no feasible plan: {m}"),
            ServeError::Input(m) => write!(f, "bad request input: {m}"),
            ServeError::Saturated => write!(f, "submission queue is full"),
            ServeError::ShutDown => write!(f, "server is shut down"),
            ServeError::WorkerLost => {
                write!(
                    f,
                    "worker lost mid-flight; request failed before a response"
                )
            }
            ServeError::Admission(e) => write!(f, "admission rejected the request: {e}"),
            ServeError::Cluster(e) => write!(f, "cluster execution failed: {e}"),
            ServeError::Sim(e) => write!(f, "array simulation failed: {e}"),
            ServeError::Dataflow(e) => write!(f, "dataflow rejected the plan: {e}"),
            ServeError::Io(m) => write!(f, "plan-cache I/O failed: {m}"),
            ServeError::Wire(e) => write!(f, "plan-cache decode failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<AdmissionError> for ServeError {
    fn from(e: AdmissionError) -> Self {
        ServeError::Admission(e)
    }
}

impl From<ClusterError> for ServeError {
    fn from(e: ClusterError) -> Self {
        ServeError::Cluster(e)
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

impl From<DataflowError> for ServeError {
    fn from(e: DataflowError) -> Self {
        ServeError::Dataflow(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_every_variant() {
        assert!(ServeError::NoPlan("x".into()).to_string().contains("x"));
        assert!(ServeError::Saturated.to_string().contains("full"));
        assert!(ServeError::ShutDown.to_string().contains("shut down"));
        assert!(ServeError::WorkerLost.to_string().contains("worker lost"));
        assert!(ServeError::from(ClusterError::Crashed { array: 2 })
            .to_string()
            .contains("array 2"));
        assert!(ServeError::from(AdmissionError::DeadlinePassed)
            .to_string()
            .contains("deadline"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ServeError>();
    }
}
