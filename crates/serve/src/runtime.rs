//! The request runtime: submission queue, dynamic batcher and the
//! multi-array scheduler.
//!
//! ```text
//!  submit()──►[bounded MPSC queue]──►batcher──►[bounded batch queue]─┬─►worker 0 (Cluster of A arrays)
//!   blocks when full (backpressure)   coalesces up to               ├─►worker 1 (Cluster of A arrays)
//!                                     max_batch / max_wait          └─►worker W-1
//! ```
//!
//! With a [`SchedConfig`] the FIFO front-end is replaced by the
//! scheduling layer ([`crate::sched`]) — per-tenant admission control
//! in `submit_with`, then a deadline/priority [`ReadyQueue`] the
//! batcher drains instead of the MPSC channel:
//!
//! ```text
//!  submit_with(opts)──►admission──►[ReadyQueue: tier→DRR→EDF]──►batcher──►[batch queue]──►workers
//!      tenant, deadline,  reject infeasible /   expired entries shed        (unchanged)
//!      priority           over-quota / burn     at dispatch
//! ```
//!
//! Each worker owns a private [`eyeriss_cluster::Cluster`] — array-level
//! parallelism inside a batch flows through `eyeriss-par`'s
//! thread-per-array executor — and executes batches from precompiled
//! plans fetched from the shared [`crate::PlanCache`]. Every completed
//! request carries a queue/compile/execute latency breakdown; the
//! server aggregates p50/p99 and throughput in [`ServerStats`].

use crate::attrib::Attribution;
use crate::batch::{collect_batch, BatchPolicy};
use crate::error::ServeError;
use crate::metrics::{LatencyBreakdown, RequestRecord, ServerSnapshot, ServerStats};
use crate::plan::{CompiledPlan, PlanCompiler, StagePlan};
use crate::sched::queue::{PushError, Pushed, ReadyQueue};
use crate::sched::tenant::TenantState;
use crate::sched::{
    AdmissionController, AdmissionError, AdmitRequest, Backlog, Priority, SchedConfig, TenantId,
    TenantRegistry, TenantSnapshot, TenantSpec,
};
use eyeriss_arch::cost::CostReport;
use eyeriss_arch::AcceleratorConfig;
use eyeriss_cluster::Cluster;
use eyeriss_nn::network::Network;
use eyeriss_nn::{reference, Fix16, LayerProblem, Tensor4};
use eyeriss_sim::Accelerator;
use eyeriss_telemetry::{
    Counter, Gauge, Histogram, RetroSpan, SloMonitor, SloSpec, Telemetry, TraceContext,
    REQUEST_ROW_TID,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The per-batch-size network plans shared by every worker: each batch
/// size the batcher can form maps to one immutable
/// [`Arc<CompiledPlan>`], compiled once and handed out by reference —
/// workers never lock the layer-level plan cache (or clone a plan) at
/// request time.
struct NetPlans {
    net: Arc<Network>,
    compiler: Arc<PlanCompiler>,
    by_batch: Mutex<HashMap<usize, Arc<CompiledPlan>>>,
    /// Per-batch-size attribution basis — the plan's `(cost report,
    /// analytic delay)` — computed at most once per size, so traced
    /// requests never re-price the network on the hot path.
    basis_by_batch: Mutex<HashMap<usize, Arc<(CostReport, f64)>>>,
}

impl NetPlans {
    fn new(net: Arc<Network>, compiler: Arc<PlanCompiler>) -> Self {
        NetPlans {
            net,
            compiler,
            by_batch: Mutex::new(HashMap::new()),
            basis_by_batch: Mutex::new(HashMap::new()),
        }
    }

    /// The network plan for batch size `b` — a shared handle, compiled
    /// at most once per size (a lost race wastes one duplicate compile,
    /// which itself hits the layer cache).
    fn get(&self, b: usize) -> Result<Arc<CompiledPlan>, ServeError> {
        if let Some(plan) = self.by_batch.lock().expect("plan map poisoned").get(&b) {
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(self.compiler.compile_network(&self.net, b)?);
        let mut plans = self.by_batch.lock().expect("plan map poisoned");
        Ok(Arc::clone(plans.entry(b).or_insert(plan)))
    }

    /// The attribution basis for `plan`: its full [`CostReport`] under
    /// the compiler's cost model and its analytic delay, shared and
    /// memoized per batch size.
    fn attribution_basis(&self, plan: &CompiledPlan) -> Arc<(CostReport, f64)> {
        let mut memo = self.basis_by_batch.lock().expect("basis map poisoned");
        Arc::clone(memo.entry(plan.batch).or_insert_with(|| {
            Arc::new((
                plan.cost_report(self.compiler.cost_model().as_ref()),
                plan.analytic_delay(),
            ))
        }))
    }
}

/// Server sizing and batching policy.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulated arrays per worker cluster.
    pub arrays: usize,
    /// Worker threads (each owning one cluster). The simulated-array
    /// pool is `workers x arrays`.
    pub workers: usize,
    /// Dynamic batching bounds.
    pub policy: BatchPolicy,
    /// Submission-queue depth; a full queue blocks [`Server::submit`]
    /// (backpressure) and fails [`Server::try_submit`].
    pub queue_capacity: usize,
    /// Per-array hardware configuration.
    pub hw: AcceleratorConfig,
    /// Telemetry instance the server records into. `None` (the
    /// default) gives the server a private, always-enabled instance so
    /// [`Server::snapshot`] is live out of the box; pass a shared
    /// instance to fold serve/cluster/sim metrics into one timeline
    /// (e.g. [`eyeriss_telemetry::Telemetry::global`], or the engine's
    /// via its builder).
    pub telemetry: Option<Telemetry>,
    /// Service-level objectives evaluated live by the server's
    /// [`SloMonitor`] (empty = monitoring off). A breach dumps the
    /// flight recorder; see [`Server::slo_monitor`].
    pub slos: Vec<SloSpec>,
    /// Capacity of the flight recorder: how many recent per-request
    /// [`Attribution`] summaries a breach dump covers.
    pub flight_capacity: usize,
    /// Scheduling layer configuration. `None` (the default) keeps the
    /// legacy FIFO path; `Some` routes every submit through tenant
    /// admission control and the deadline/priority ready queue (see
    /// [`crate::sched`]).
    pub sched: Option<SchedConfig>,
}

impl ServeConfig {
    /// A small default: two workers of two arrays each, default batching
    /// bounds, and the fabricated chip's per-array configuration.
    pub fn new() -> Self {
        ServeConfig {
            arrays: 2,
            workers: 2.min(eyeriss_par::num_threads()).max(1),
            policy: BatchPolicy::default(),
            queue_capacity: 64,
            hw: AcceleratorConfig::eyeriss_chip(),
            telemetry: None,
            slos: Vec::new(),
            flight_capacity: 256,
            sched: None,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

/// Pre-resolved handles for every serve-layer metric, so the hot paths
/// never touch the registry lock. Cloning shares the same storage.
#[derive(Clone)]
struct ServeTele {
    queue_depth: Gauge,
    inflight_batches: Gauge,
    completed: Counter,
    shed: Counter,
    expired: Counter,
    queue_ns: Histogram,
    compile_ns: Histogram,
    execute_ns: Histogram,
    total_ns: Histogram,
    batch_size: Histogram,
    delay_residual: Histogram,
}

impl ServeTele {
    fn resolve(tele: &Telemetry) -> Self {
        ServeTele {
            queue_depth: tele.gauge("serve.queue_depth"),
            inflight_batches: tele.gauge("serve.inflight_batches"),
            completed: tele.counter("serve.completed"),
            shed: tele.counter("serve.shed"),
            expired: tele.counter("serve.expired"),
            queue_ns: tele.histogram("serve.queue_ns"),
            compile_ns: tele.histogram("serve.compile_ns"),
            execute_ns: tele.histogram("serve.execute_ns"),
            total_ns: tele.histogram("serve.total_ns"),
            batch_size: tele.histogram("serve.batch_size"),
            delay_residual: tele.histogram("serve.delay_residual"),
        }
    }
}

/// One in-flight request.
struct Pending {
    id: u64,
    input: Tensor4<Fix16>,
    submitted: Instant,
    trace: TraceContext,
    tx: Sender<Result<Response, ServeError>>,
    /// Scheduling provenance — present on sched-enabled servers only.
    meta: Option<ReqMeta>,
}

/// Scheduling metadata riding one request through the ready queue to
/// the worker that completes (or sheds) it.
struct ReqMeta {
    tenant: Arc<TenantState>,
    /// Absolute deadline on the telemetry epoch timeline; checked again
    /// at worker pickup so a request that outlived its deadline in the
    /// dispatch pipeline expires instead of completing late.
    deadline_ns: Option<u64>,
}

/// Per-request scheduling options for
/// [`Server::submit_with`] — tenant identity, an optional
/// deadline and a priority override.
///
/// On servers without a [`SchedConfig`] the options are ignored (the
/// legacy FIFO has no tenants or deadlines).
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// The submitting tenant (default: [`TenantId::DEFAULT`]).
    pub tenant: TenantId,
    /// Relative deadline from submission; the request is rejected at
    /// admission if its estimated completion misses it, and shed at
    /// dispatch if it expires in queue. `None` = best effort.
    pub deadline: Option<Duration>,
    /// Overrides the tenant's configured [`Priority`] for this request.
    pub priority: Option<Priority>,
}

impl SubmitOptions {
    /// Options for `tenant` with no deadline and its configured
    /// priority.
    pub fn tenant(tenant: TenantId) -> SubmitOptions {
        SubmitOptions {
            tenant,
            ..SubmitOptions::default()
        }
    }

    /// Sets the relative deadline.
    pub fn deadline(mut self, deadline: Duration) -> SubmitOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the priority override.
    pub fn priority(mut self, priority: Priority) -> SubmitOptions {
        self.priority = Some(priority);
        self
    }
}

/// A completed inference.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request id assigned at submission.
    pub id: u64,
    /// The network output for this request (`[1][M][E][E]`), bit-exact
    /// against a single-array simulation of the same input.
    pub output: Tensor4<Fix16>,
    /// Where this request's latency went.
    pub latency: LatencyBreakdown,
    /// How many requests shared the batch.
    pub batch_size: usize,
    /// Energy/delay attribution for this request — present whenever
    /// the server's telemetry instance was enabled at execution time.
    pub attribution: Option<Attribution>,
}

/// The caller's side of one submitted request.
#[derive(Debug)]
pub struct RequestHandle {
    id: u64,
    trace: u64,
    rx: Receiver<Result<Response, ServeError>>,
}

impl RequestHandle {
    /// The request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The trace id minted at submission (0 when telemetry is
    /// disabled) — the key tying this request to its span tree in the
    /// server's telemetry snapshot.
    pub fn trace_id(&self) -> u64 {
        self.trace
    }

    /// Blocks until the request completes.
    ///
    /// # Errors
    ///
    /// Returns the worker's error for this batch, or
    /// [`ServeError::ShutDown`] if the server dropped the request.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShutDown)?
    }
}

/// The submission front-end: the legacy FIFO channel, or the
/// scheduling layer.
enum Front {
    Fifo(SyncSender<Pending>),
    Sched(Arc<SchedShared>),
}

/// Shared state of a sched-enabled server: the ready queue the batcher
/// pulls from, the tenant registry, the admission controller, and the
/// memoized batch-1 analytic delay the completion estimate prices.
struct SchedShared {
    queue: ReadyQueue<Pending>,
    registry: TenantRegistry,
    admission: AdmissionController,
    unit_cycles: OnceLock<Option<f64>>,
}

/// An inference server for one network.
///
/// # Example
///
/// ```no_run
/// use eyeriss_serve::{ServeConfig, Server};
/// use eyeriss_nn::network::NetworkBuilder;
/// use eyeriss_nn::synth;
///
/// let net = NetworkBuilder::new(3, 19).conv("C1", 8, 3, 2)?.build(7);
/// let input = synth::ifmap(&net.stages()[0].shape, 1, 42);
/// let server = Server::start(net, ServeConfig::new());
/// let response = server.submit(input)?.wait()?;
/// println!("request {} done in {:?}", response.id, response.latency.total());
/// let stats = server.shutdown();
/// assert_eq!(stats.completed(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Server {
    front: Front,
    batcher: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    records: Arc<Mutex<Vec<RequestRecord>>>,
    compiler: Arc<PlanCompiler>,
    plans: Arc<NetPlans>,
    max_batch: usize,
    started: Instant,
    next_id: AtomicU64,
    input_dims: (usize, usize),
    tele: Telemetry,
    metrics: ServeTele,
    monitor: SloMonitor,
}

impl Server {
    /// Starts batcher and worker threads serving `net` with a fresh plan
    /// cache.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.arrays` or `cfg.workers` is zero.
    pub fn start(net: Network, cfg: ServeConfig) -> Self {
        let compiler = PlanCompiler::new(cfg.arrays, cfg.hw);
        Server::start_with_compiler(net, cfg, compiler)
    }

    /// [`Server::start`] with a caller-provided compiler, so a warm
    /// [`crate::PlanCache`] can be shared across server restarts (or
    /// across servers) via [`PlanCompiler::with_cache`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers` is zero or the compiler's cluster width
    /// disagrees with `cfg.arrays`.
    pub fn start_with_compiler(net: Network, cfg: ServeConfig, compiler: PlanCompiler) -> Self {
        assert!(cfg.workers > 0, "server needs at least one worker");
        assert_eq!(
            compiler.arrays(),
            cfg.arrays,
            "compiler cluster width must match the server's"
        );
        let net = Arc::new(net);
        let compiler = Arc::new(compiler);
        let plans = Arc::new(NetPlans::new(Arc::clone(&net), Arc::clone(&compiler)));
        let records = Arc::new(Mutex::new(Vec::new()));
        let input_dims = net.input_dims();
        let tele = cfg.telemetry.unwrap_or_else(Telemetry::new_enabled);
        let metrics = ServeTele::resolve(&tele);
        let monitor = SloMonitor::new(cfg.slos, cfg.flight_capacity);

        // The batch queue is bounded by the worker count so that a slow
        // pool pushes back through the batcher into the submission queue
        // (FIFO) or onto the admission estimate (sched).
        let (batch_tx, batch_rx) = mpsc::sync_channel::<Vec<Pending>>(cfg.workers);
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let policy = cfg.policy;
        let (front, batcher) = match cfg.sched.clone() {
            None => {
                let (submit_tx, submit_rx) =
                    mpsc::sync_channel::<Pending>(cfg.queue_capacity.max(1));
                let queue_depth = metrics.queue_depth.clone();
                let batcher = std::thread::spawn(move || {
                    while let Some(batch) = collect_batch(&submit_rx, &policy) {
                        queue_depth.add(-(batch.len() as i64));
                        if batch_tx.send(batch).is_err() {
                            break; // workers are gone
                        }
                    }
                });
                (Front::Fifo(submit_tx), batcher)
            }
            Some(sc) => {
                let capacity = if sc.capacity > 0 {
                    sc.capacity
                } else {
                    cfg.queue_capacity.max(1)
                };
                let registry = TenantRegistry::new(tele.clone());
                for spec in sc.tenants {
                    registry.register(spec);
                }
                let shared = Arc::new(SchedShared {
                    queue: ReadyQueue::new(
                        capacity,
                        sc.quantum,
                        sc.aging.as_nanos().min(u64::MAX as u128) as u64,
                    ),
                    registry,
                    admission: AdmissionController::new(cfg.workers, cfg.policy.max_batch),
                    unit_cycles: OnceLock::new(),
                });
                let batcher = {
                    let shared = Arc::clone(&shared);
                    let tele = tele.clone();
                    let metrics = metrics.clone();
                    std::thread::spawn(move || {
                        let now = || tele.since_epoch(Instant::now());
                        while let Some(drained) = shared.queue.next_batch(&policy, now) {
                            for pending in drained.expired {
                                metrics.queue_depth.dec();
                                metrics.expired.inc();
                                if let Some(meta) = &pending.meta {
                                    meta.tenant.note_expired();
                                }
                                let _ = pending.tx.send(Err(AdmissionError::DeadlinePassed.into()));
                            }
                            if drained.batch.is_empty() {
                                continue;
                            }
                            metrics.queue_depth.add(-(drained.batch.len() as i64));
                            if batch_tx.send(drained.batch).is_err() {
                                break; // workers are gone
                            }
                        }
                    })
                };
                (Front::Sched(shared), batcher)
            }
        };

        let sched = match &front {
            Front::Sched(s) => Some(Arc::clone(s)),
            Front::Fifo(_) => None,
        };
        let workers = (0..cfg.workers)
            .map(|_| {
                let rx = Arc::clone(&batch_rx);
                let net = Arc::clone(&net);
                let plans = Arc::clone(&plans);
                let records = Arc::clone(&records);
                let cluster = Cluster::new(cfg.arrays, cfg.hw).with_telemetry(tele.clone());
                let pool_chip = Accelerator::new(cfg.hw).telemetry(tele.clone());
                let tele = tele.clone();
                let metrics = metrics.clone();
                let monitor = monitor.clone();
                let sched = sched.clone();
                std::thread::spawn(move || {
                    worker_loop(
                        &rx,
                        &net,
                        &plans,
                        &cluster,
                        pool_chip,
                        &records,
                        &tele,
                        &metrics,
                        &monitor,
                        sched.as_deref(),
                    )
                })
            })
            .collect();

        Server {
            front,
            batcher,
            workers,
            records,
            compiler,
            plans,
            max_batch: cfg.policy.max_batch.max(1),
            started: Instant::now(),
            next_id: AtomicU64::new(0),
            input_dims,
            tele,
            metrics,
            monitor,
        }
    }

    /// Compiles the served network's plans for every batch size the
    /// batcher can form (`1..=max_batch`), so no request ever pays a
    /// plan search at serving time. Returns one shared
    /// [`crate::CompiledPlan`] handle per batch size, in increasing-size
    /// order — the same `Arc`s the workers will execute from.
    ///
    /// # Errors
    ///
    /// Fails if any weighted stage has no feasible plan at some batch
    /// size.
    pub fn prewarm(&self) -> Result<Vec<Arc<CompiledPlan>>, ServeError> {
        (1..=self.max_batch).map(|n| self.plans.get(n)).collect()
    }

    fn pending(&self, input: Tensor4<Fix16>) -> Result<(Pending, RequestHandle), ServeError> {
        let (c, h) = self.input_dims;
        if input.dims() != [1, c, h, h] {
            return Err(ServeError::Input(format!(
                "expected [1, {c}, {h}, {h}], got {:?}",
                input.dims()
            )));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let trace = self.tele.mint_trace();
        let (tx, rx) = mpsc::channel();
        Ok((
            Pending {
                id,
                input,
                submitted: Instant::now(),
                trace,
                tx,
                meta: None,
            },
            RequestHandle {
                id,
                trace: trace.trace,
                rx,
            },
        ))
    }

    /// Feeds one admission decision to the SLO monitor when a shed
    /// spec is configured (a relaxed load plus a bool check otherwise).
    fn observe_admission(&self, shed: bool) {
        if self.monitor.wants_shed() && self.tele.enabled() {
            self.monitor
                .observe_shed(self.tele.since_epoch(Instant::now()), shed);
        }
    }

    /// Submits one single-image request (`[1][C][H][H]`), blocking while
    /// the submission queue is full — the backpressure path. On a
    /// sched-enabled server this is
    /// [`Server::submit_with`] under default [`SubmitOptions`] (the
    /// default tenant, no deadline), and admission may reject instead
    /// of blocking.
    ///
    /// # Errors
    ///
    /// Fails on mismatched input dimensions, a shut-down server, or —
    /// sched only — an [`AdmissionError`].
    pub fn submit(&self, input: Tensor4<Fix16>) -> Result<RequestHandle, ServeError> {
        match &self.front {
            Front::Fifo(tx) => {
                let (pending, handle) = self.pending(input)?;
                // Increment before the send: the matching decrement (in
                // the batcher) can only follow a successful send, so the
                // gauge never goes negative (counting a blocked submit
                // as queued).
                self.metrics.queue_depth.inc();
                if tx.send(pending).is_err() {
                    self.metrics.queue_depth.dec();
                    return Err(ServeError::ShutDown);
                }
                self.observe_admission(false);
                Ok(handle)
            }
            Front::Sched(shared) => self.submit_sched(shared, input, SubmitOptions::default()),
        }
    }

    /// Non-blocking [`Server::submit`]: a full queue returns
    /// [`ServeError::Saturated`] immediately instead of waiting (load
    /// shedding for open-loop clients). The scheduling path never
    /// blocks on a full queue, so on a sched-enabled server this is
    /// exactly [`Server::submit`] (full-queue rejections surface as
    /// [`AdmissionError::QueueFull`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::Saturated`] when the queue is full, plus every
    /// [`Server::submit`] failure mode.
    pub fn try_submit(&self, input: Tensor4<Fix16>) -> Result<RequestHandle, ServeError> {
        match &self.front {
            Front::Fifo(tx) => {
                let (pending, handle) = self.pending(input)?;
                self.metrics.queue_depth.inc();
                match tx.try_send(pending) {
                    Ok(()) => {
                        self.observe_admission(false);
                        Ok(handle)
                    }
                    Err(TrySendError::Full(_)) => {
                        self.metrics.queue_depth.dec();
                        self.metrics.shed.inc();
                        self.observe_admission(true);
                        Err(ServeError::Saturated)
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        self.metrics.queue_depth.dec();
                        Err(ServeError::ShutDown)
                    }
                }
            }
            Front::Sched(shared) => self.submit_sched(shared, input, SubmitOptions::default()),
        }
    }

    /// Submits one request with explicit scheduling options — tenant,
    /// deadline, priority. On a FIFO server (no [`SchedConfig`]) the
    /// options are ignored and this is [`Server::submit`].
    ///
    /// # Errors
    ///
    /// Every [`Server::submit`] failure mode plus a typed
    /// [`ServeError::Admission`] when the scheduling layer rejects:
    /// unknown tenant, passed or infeasible deadline, over-quota,
    /// burn-rate shed, or a full queue the request does not outrank.
    pub fn submit_with(
        &self,
        input: Tensor4<Fix16>,
        opts: SubmitOptions,
    ) -> Result<RequestHandle, ServeError> {
        match &self.front {
            Front::Fifo(_) => self.submit(input),
            Front::Sched(shared) => self.submit_sched(shared, input, opts),
        }
    }

    /// The scheduling submit path: admission control, then a ranked
    /// push into the ready queue.
    fn submit_sched(
        &self,
        shared: &SchedShared,
        input: Tensor4<Fix16>,
        opts: SubmitOptions,
    ) -> Result<RequestHandle, ServeError> {
        let Some(tenant) = shared.registry.get(opts.tenant) else {
            return Err(AdmissionError::UnknownTenant(opts.tenant.0).into());
        };
        let (mut pending, handle) = self.pending(input)?;
        tenant.note_submitted();
        let now_ns = self.tele.since_epoch(pending.submitted);
        let deadline_ns = opts
            .deadline
            .map(|d| now_ns.saturating_add(d.as_nanos().min(u64::MAX as u128) as u64));
        let tier = opts.priority.unwrap_or(tenant.spec().priority).tier();
        // The batch-1 analytic delay prices the completion estimate;
        // compiled lazily once (prewarmed servers pay nothing here).
        let unit_cycles = *shared.unit_cycles.get_or_init(|| {
            self.plans
                .get(1)
                .ok()
                .map(|p| self.plans.attribution_basis(&p).1)
        });
        let backlog = Backlog {
            queued: self.metrics.queue_depth.get(),
            inflight: self.metrics.inflight_batches.get(),
        };
        if let Err(e) = shared.admission.admit(
            &tenant,
            AdmitRequest {
                tier,
                deadline_ns,
                now_ns,
                unit_cycles,
                backlog,
                burning: self.monitor.burning(),
            },
        ) {
            tenant.note_rejected(&e);
            self.metrics.shed.inc();
            self.observe_admission(true);
            return Err(e.into());
        }
        pending.meta = Some(ReqMeta {
            tenant: Arc::clone(&tenant),
            deadline_ns,
        });
        self.metrics.queue_depth.inc();
        let weight = tenant.spec().weight;
        match shared.queue.push(
            pending,
            opts.tenant.index(),
            weight,
            tier,
            deadline_ns,
            now_ns,
        ) {
            Ok(Pushed::Queued) => {}
            Ok(Pushed::Displaced(victim)) => {
                // The new entry took the victim's slot: net queue depth
                // is unchanged, the victim is shed.
                self.metrics.queue_depth.dec();
                self.metrics.shed.inc();
                if let Some(meta) = &victim.meta {
                    meta.tenant.note_shed();
                }
                self.observe_admission(true);
                let _ = victim.tx.send(Err(AdmissionError::Shed.into()));
            }
            Err(PushError::Full(_)) => {
                self.metrics.queue_depth.dec();
                let e = AdmissionError::QueueFull;
                tenant.note_rejected(&e);
                self.metrics.shed.inc();
                self.observe_admission(true);
                return Err(e.into());
            }
            Err(PushError::Closed(_)) => {
                self.metrics.queue_depth.dec();
                return Err(ServeError::ShutDown);
            }
        }
        tenant.note_admitted();
        self.observe_admission(false);
        Ok(handle)
    }

    /// Registers a new tenant on a sched-enabled server, returning its
    /// id for [`SubmitOptions::tenant`]. Returns `None` on a FIFO
    /// server (no scheduling layer to register with).
    pub fn register_tenant(&self, spec: TenantSpec) -> Option<TenantId> {
        match &self.front {
            Front::Fifo(_) => None,
            Front::Sched(shared) => Some(shared.registry.register(spec)),
        }
    }

    /// Live per-tenant counters in tenant-id order; empty on a FIFO
    /// server.
    pub fn tenants(&self) -> Vec<TenantSnapshot> {
        match &self.front {
            Front::Fifo(_) => Vec::new(),
            Front::Sched(shared) => shared.registry.snapshots(),
        }
    }

    /// The admission controller's live completion estimate for a
    /// request submitted right now — expected queue wait against the
    /// current backlog plus one service time. `None` on a FIFO server,
    /// or before the workers have fed the estimator its first sample.
    pub fn estimated_completion(&self) -> Option<Duration> {
        let Front::Sched(shared) = &self.front else {
            return None;
        };
        let unit_cycles = *shared.unit_cycles.get_or_init(|| {
            self.plans
                .get(1)
                .ok()
                .map(|p| self.plans.attribution_basis(&p).1)
        });
        let backlog = Backlog {
            queued: self.metrics.queue_depth.get(),
            inflight: self.metrics.inflight_batches.get(),
        };
        let now_ns = self.tele.since_epoch(Instant::now());
        shared
            .admission
            .estimate_completion_ns(now_ns, unit_cycles, backlog)
            .map(|est| Duration::from_nanos(est.saturating_sub(now_ns)))
    }

    /// Snapshot of the plan-cache counters.
    pub fn cache_stats(&self) -> crate::plan::CacheStats {
        self.compiler.cache().stats()
    }

    /// A live, point-in-time view of the server — queue depth,
    /// in-flight batches and streaming latency quantiles — available
    /// **while requests are running**, unlike [`Server::shutdown`]'s
    /// [`ServerStats`]. With the default configuration (no injected
    /// telemetry) the backing instance is always enabled, so this is
    /// never empty once requests complete.
    pub fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            elapsed: self.started.elapsed(),
            completed: self.metrics.completed.get(),
            shed: self.metrics.shed.get(),
            queue_depth: self.metrics.queue_depth.get(),
            inflight_batches: self.metrics.inflight_batches.get(),
            cache: self.compiler.cache().stats(),
            queue_ns: self.metrics.queue_ns.snapshot(),
            compile_ns: self.metrics.compile_ns.snapshot(),
            execute_ns: self.metrics.execute_ns.snapshot(),
            total_ns: self.metrics.total_ns.snapshot(),
            batch_size: self.metrics.batch_size.snapshot(),
            delay_residual: self.metrics.delay_residual.snapshot(),
            tenants: self.tenants(),
        }
    }

    /// The live SLO monitor (configured via [`ServeConfig::slos`]):
    /// breach counts and flight-recorder dumps are readable while the
    /// server runs, and survive until [`Server::shutdown`] through the
    /// handle's clones.
    pub fn slo_monitor(&self) -> &SloMonitor {
        &self.monitor
    }

    /// The telemetry instance this server records into — spans from the
    /// workers' clusters and simulated chips land here too, so
    /// [`eyeriss_telemetry::Telemetry::snapshot`] plus
    /// [`eyeriss_telemetry::TelemetrySnapshot::chrome_trace`] yields a
    /// loadable `chrome://tracing` timeline of the serving run.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tele
    }

    /// Drains in-flight requests, stops every thread and returns the
    /// lifetime statistics.
    pub fn shutdown(self) -> ServerStats {
        let Server {
            front,
            batcher,
            workers,
            records,
            compiler,
            started,
            ..
        } = self;
        match front {
            // Dropping the sender disconnects the channel: the batcher
            // drains the queue, then exits.
            Front::Fifo(submit_tx) => drop(submit_tx),
            // Closing the ready queue has the same contract: blocked
            // consumers drain what is queued, then observe shutdown.
            Front::Sched(shared) => shared.queue.close(),
        }
        let _ = batcher.join();
        for w in workers {
            let _ = w.join();
        }
        let records = std::mem::take(&mut *records.lock().expect("records poisoned"));
        ServerStats {
            records,
            elapsed: started.elapsed(),
            cache: compiler.cache().stats(),
        }
    }
}

/// One worker: picks whole batches off the shared queue and executes
/// them on its private cluster until the queue disconnects.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    batch_rx: &Mutex<Receiver<Vec<Pending>>>,
    net: &Network,
    plans: &NetPlans,
    cluster: &Cluster,
    mut pool_chip: Accelerator,
    records: &Mutex<Vec<RequestRecord>>,
    tele: &Telemetry,
    metrics: &ServeTele,
    monitor: &SloMonitor,
    sched: Option<&SchedShared>,
) {
    let wants_records = !monitor.is_empty();
    loop {
        // Holding the lock only while *waiting* serializes batch pickup,
        // not batch processing.
        let batch = {
            let rx = batch_rx.lock().expect("batch queue poisoned");
            rx.recv()
        };
        let Ok(mut batch) = batch else { break };
        // Deadlines are re-checked here, not just at batcher dispatch:
        // the dispatch channel holds several batches, so a request can
        // outlive its deadline between dispatch and pickup. Expiring it
        // now bounds a completed request's latency by its deadline plus
        // one batch execution.
        if sched.is_some() {
            let now_ns = tele.since_epoch(Instant::now());
            let mut live = Vec::with_capacity(batch.len());
            for pending in batch {
                let expired = pending
                    .meta
                    .as_ref()
                    .and_then(|m| m.deadline_ns)
                    .is_some_and(|d| d < now_ns);
                if expired {
                    metrics.expired.inc();
                    if let Some(meta) = &pending.meta {
                        meta.tenant.note_expired();
                    }
                    let _ = pending.tx.send(Err(AdmissionError::DeadlinePassed.into()));
                } else {
                    live.push(pending);
                }
            }
            batch = live;
            if batch.is_empty() {
                continue;
            }
        }
        let outcome = {
            // A panic in run_batch unwinds through the guard, so the
            // inflight gauge can never leak an increment. The guard also
            // drops before responses are delivered: a client that has
            // seen its response never observes its batch as inflight.
            let _inflight = metrics.inflight_batches.scoped_inc();
            // The batch joins the first request's trace; every request's
            // queue wait links into the batch span as a flow arrow, so
            // multi-trace batches stay attributable.
            let dispatch = Instant::now();
            let batch_trace = batch.first().map_or(0, |p| p.trace.trace);
            let _root = tele.in_context(TraceContext {
                trace: batch_trace,
                parent: 0,
            });
            let batch_span = tele.span_with("serve.batch", "serve", batch.len() as u64);
            let bid = batch_span.id();
            if bid != 0 {
                for pending in &batch {
                    tele.record_retro(RetroSpan {
                        name: "serve.queue",
                        cat: "serve",
                        arg: pending.id,
                        tid: REQUEST_ROW_TID,
                        ctx: pending.trace,
                        start: pending.submitted,
                        dur: dispatch.duration_since(pending.submitted),
                        link: bid,
                    });
                }
            }
            // `batch_span` is still live: spans opened inside run_batch
            // on this thread parent to it through the ambient context.
            run_batch(net, plans, cluster, &mut pool_chip, &batch, tele)
        };
        match outcome {
            Ok(done) => {
                // Calibrate the admission estimator: one sample per
                // executed batch, its plan's analytic delay against the
                // measured execute wall time.
                if let Some(sched) = sched {
                    if let (Some(first), Ok(plan)) = (done.first(), plans.get(batch.len())) {
                        let execute_ns =
                            first.0.latency.execute.as_nanos().min(u64::MAX as u128) as u64;
                        let cycles = plans.attribution_basis(&plan).1;
                        sched.admission.estimator().observe(cycles, execute_ns);
                    }
                }
                let mut recs = records.lock().expect("records poisoned");
                for (pending, response) in batch.into_iter().zip(done) {
                    if let Some(meta) = &pending.meta {
                        meta.tenant.note_completed();
                    }
                    let latency = response.0.latency;
                    metrics.queue_ns.record_duration(latency.queue);
                    metrics.compile_ns.record_duration(latency.compile);
                    metrics.execute_ns.record_duration(latency.execute);
                    metrics.total_ns.record_duration(latency.total());
                    metrics.batch_size.record(response.0.batch_size as u64);
                    metrics.completed.inc();
                    if let Some(att) = &response.0.attribution {
                        metrics
                            .delay_residual
                            .record(att.residual_cycles().abs() as u64);
                        if wants_records {
                            monitor.record(att.flight_record());
                        }
                    }
                    recs.push(RequestRecord {
                        id: response.0.id,
                        batch_size: response.0.batch_size,
                        latency,
                        sim_cycles: response.1,
                    });
                    let _ = pending.tx.send(Ok(response.0));
                }
            }
            Err(e) => {
                for pending in batch {
                    let _ = pending.tx.send(Err(e.clone()));
                }
            }
        }
    }
}

/// Executes one batch end-to-end; returns one `(response, sim_cycles)`
/// per request, in batch order. With telemetry enabled, each response
/// carries an [`Attribution`] built from the executed plan's cost
/// report and the simulator's measured cycles.
fn run_batch(
    net: &Network,
    plans: &NetPlans,
    cluster: &Cluster,
    pool_chip: &mut Accelerator,
    batch: &[Pending],
    tele: &Telemetry,
) -> Result<Vec<(Response, u64)>, ServeError> {
    let started = Instant::now();
    let b = batch.len();
    let (c, h) = net.input_dims();
    // Stack the single-image requests into one [b][C][H][H] batch: each
    // request's image is one contiguous copy, no per-element indexing.
    let mut act = Tensor4::zeros([b, c, h, h]);
    for (z, pending) in batch.iter().enumerate() {
        act.image_mut(z).copy_from_slice(pending.input.image(0));
    }

    // One shared network plan for the whole batch: every weighted stage's
    // `Arc<ClusterPlan>` is already resolved, so the execute loop touches
    // no cache lock and clones nothing.
    let t0 = Instant::now();
    let netplan = plans.get(b)?;
    let compile = t0.elapsed();
    let mut sim_cycles = 0u64;
    // Weighted-stage cycles only: the residual compares against
    // `analytic_delay`, which prices weighted stages.
    let mut layer_cycles = 0u64;
    for (stage, splan) in net.stages().iter().zip(&netplan.stages) {
        match splan {
            StagePlan::Pool { shape, .. } => {
                let (out, stats) = pool_chip.run_pool(shape, b, &act);
                sim_cycles += stats.total_cycles();
                act = out;
            }
            StagePlan::Layer {
                shape, relu, plan, ..
            } => {
                let weights = stage.weights.as_ref().expect("weighted stage");
                let bias = stage.bias.as_ref().expect("weighted stage");
                let problem = LayerProblem::new(*shape, b);
                let run = cluster.execute(plan, &problem, &act, weights, bias)?;
                sim_cycles += run.stats.cluster_cycles();
                layer_cycles += run.stats.cluster_cycles();
                act = reference::quantize(&run.psums, *relu);
            }
        }
    }
    let execute = started.elapsed().saturating_sub(compile);
    let completed = Instant::now();
    // One memoized (cost report, analytic delay) pair per batch size:
    // attribution costs no plan re-pricing per request.
    let basis = tele.enabled().then(|| plans.attribution_basis(&netplan));

    let [_, m, e, _] = act.dims();
    Ok(batch
        .iter()
        .enumerate()
        .map(|(z, pending)| {
            // Unstack by image: one contiguous copy per response.
            let output = Tensor4::from_vec([1, m, e, e], act.image(z).to_vec());
            let latency = LatencyBreakdown {
                queue: started.duration_since(pending.submitted),
                compile,
                execute,
            };
            let attribution = basis.as_ref().map(|basis| Attribution {
                id: pending.id,
                trace: pending.trace.trace,
                batch_size: b,
                latency,
                report: basis.0,
                analytic_delay: basis.1,
                measured_cycles: layer_cycles,
                submitted_ns: tele.since_epoch(pending.submitted),
                completed_ns: tele.since_epoch(completed),
            });
            (
                Response {
                    id: pending.id,
                    output,
                    latency,
                    batch_size: b,
                    attribution,
                },
                sim_cycles,
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_arch::GridDims;
    use eyeriss_nn::network::NetworkBuilder;
    use eyeriss_nn::synth;

    fn tiny_net() -> Network {
        NetworkBuilder::new(3, 19)
            .conv("C1", 8, 3, 2)
            .unwrap()
            .pool("P1", 3, 2)
            .unwrap()
            .conv("C2", 12, 3, 1)
            .unwrap()
            .fully_connected("FC", 10)
            .unwrap()
            .build(7)
    }

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            arrays: 2,
            workers: 2,
            policy: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(20),
            },
            queue_capacity: 16,
            hw: AcceleratorConfig {
                grid: GridDims::new(6, 8),
                rf_bytes_per_pe: 512.0,
                buffer_bytes: 32.0 * 1024.0,
            },
            telemetry: None,
            slos: Vec::new(),
            flight_capacity: 256,
            sched: None,
        }
    }

    #[test]
    fn serves_requests_bit_exactly_with_breakdown() {
        let net = tiny_net();
        let golden_net = net.clone();
        let server = Server::start(net, small_cfg());
        let shape = golden_net.stages()[0].shape;
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let input = synth::ifmap(&shape, 1, 100 + i);
                (i, server.submit(input).unwrap())
            })
            .collect();
        for (i, handle) in handles {
            let input = synth::ifmap(&shape, 1, 100 + i);
            let golden = golden_net.forward(1, &input);
            let response = handle.wait().unwrap();
            assert_eq!(response.output, golden, "request {i} diverged");
            assert!(response.batch_size >= 1);
            assert!(response.latency.total() >= response.latency.execute);
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed(), 6);
        assert!(stats.p99() >= stats.p50());
        // Every weighted stage went through the plan cache (batch sizes
        // may differ between batches, so only misses are deterministic).
        assert!(stats.cache.misses > 0);
        assert!(stats.records.iter().all(|r| r.sim_cycles > 0));
    }

    #[test]
    fn snapshot_is_live_and_consistent_with_final_stats() {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let server = Server::start(net, small_cfg());
        assert_eq!(server.snapshot().completed, 0);
        let handles: Vec<_> = (0..6)
            .map(|i| server.submit(synth::ifmap(&shape, 1, i)).unwrap())
            .collect();
        for handle in handles {
            handle.wait().unwrap();
        }
        let snap = server.snapshot();
        assert_eq!(snap.completed, 6);
        assert_eq!(snap.shed, 0);
        assert_eq!(snap.queue_depth, 0, "queue drained");
        assert_eq!(snap.total_ns.count(), 6);
        assert!(snap.p99() >= snap.p50());
        assert!(snap.throughput_rps() > 0.0);
        assert!(snap.mean_batch() >= 1.0);
        // The cluster and chip record spans into the server's instance.
        let tele = server.telemetry().snapshot();
        assert!(tele.spans.iter().any(|s| s.name == "serve.batch"));
        assert!(tele.spans.iter().any(|s| s.name == "cluster.array"));
        assert!(tele.spans.iter().any(|s| s.name == "sim.pass"));
        let trace = tele.chrome_trace();
        assert!(trace.contains("\"name\":\"cluster.array\""));

        let stats = server.shutdown();
        assert_eq!(stats.completed(), 6);
        // Streaming p50/p99 agree with the exact nearest-rank stats to
        // within the documented bucket error.
        let summary = stats.latency_summary();
        for (stream, exact) in [(snap.p50(), summary.p50), (snap.p99(), summary.p99)] {
            let bound = exact.as_nanos() as f64 * eyeriss_telemetry::RELATIVE_ERROR + 1.0;
            let delta = stream.as_nanos().abs_diff(exact.as_nanos()) as f64;
            assert!(delta <= bound, "stream {stream:?} vs exact {exact:?}");
        }
    }

    #[test]
    fn rejects_wrong_input_dims() {
        let server = Server::start(tiny_net(), small_cfg());
        let bad = Tensor4::<Fix16>::zeros([1, 3, 18, 18]);
        assert!(matches!(server.submit(bad), Err(ServeError::Input(_))));
        let batch_of_two = Tensor4::<Fix16>::zeros([2, 3, 19, 19]);
        assert!(matches!(
            server.try_submit(batch_of_two),
            Err(ServeError::Input(_))
        ));
        let stats = server.shutdown();
        assert_eq!(stats.completed(), 0);
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let server = Server::start(net, small_cfg());
        let handles: Vec<_> = (0..8)
            .map(|i| server.submit(synth::ifmap(&shape, 1, i)).unwrap())
            .collect();
        let stats = server.shutdown(); // must not drop queued work
        assert_eq!(stats.completed(), 8);
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
    }

    #[test]
    fn prewarm_compiles_every_batch_size_and_survives_restart() {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let cfg = small_cfg();
        let compiler = PlanCompiler::new(cfg.arrays, cfg.hw);
        let cache = Arc::clone(compiler.cache());

        let server = Server::start_with_compiler(net.clone(), cfg.clone(), compiler);
        let plans = server.prewarm().unwrap();
        assert_eq!(plans.len(), 4, "one compiled plan per batch size 1..=4");
        assert!(plans.iter().all(|p| p.analytic_delay() > 0.0));
        let warmed = server.cache_stats();
        // 3 weighted stages x 4 batch sizes, all distinct problems.
        assert_eq!(warmed.misses, 12);
        // A warmed server never searches at request time.
        let response = server.submit(synth::ifmap(&shape, 1, 5)).unwrap();
        response.wait().unwrap();
        assert_eq!(server.cache_stats().misses, warmed.misses);
        server.shutdown();

        // Restart sharing the same cache: prewarm is now free.
        let compiler = PlanCompiler::new(cfg.arrays, cfg.hw).with_cache(cache);
        let restarted = Server::start_with_compiler(net, cfg, compiler);
        let replans = restarted.prewarm().unwrap();
        assert!(replans.iter().all(|p| p.searched == 0), "all hits");
        assert_eq!(restarted.cache_stats().misses, warmed.misses);
        restarted.shutdown();
    }

    #[test]
    fn unbatched_policy_means_batch_size_one() {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let mut cfg = small_cfg();
        cfg.policy = BatchPolicy::unbatched();
        cfg.workers = 1;
        let server = Server::start(net, cfg);
        let handles: Vec<_> = (0..3)
            .map(|i| server.submit(synth::ifmap(&shape, 1, i)).unwrap())
            .collect();
        for handle in handles {
            assert_eq!(handle.wait().unwrap().batch_size, 1);
        }
        let stats = server.shutdown();
        assert_eq!(stats.max_batch(), 1);
        // With unbatched policy every request is size 1 and the workers
        // share one network plan per batch size: the layer cache is
        // consulted only by the first compile (3 weighted stages), and
        // no number of further requests adds lookups of either kind.
        assert_eq!(stats.cache.misses, 3);
        assert_eq!(stats.cache.hits, 0);
    }

    fn sched_cfg() -> ServeConfig {
        ServeConfig {
            sched: Some(SchedConfig::new()),
            ..small_cfg()
        }
    }

    #[test]
    fn sched_server_serves_bit_exactly_via_default_tenant() {
        let net = tiny_net();
        let golden_net = net.clone();
        let shape = net.stages()[0].shape;
        let server = Server::start(net, sched_cfg());
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let input = synth::ifmap(&shape, 1, 100 + i);
                (i, server.submit(input).unwrap())
            })
            .collect();
        for (i, handle) in handles {
            let input = synth::ifmap(&shape, 1, 100 + i);
            let golden = golden_net.forward(1, &input);
            assert_eq!(
                handle.wait().unwrap().output,
                golden,
                "request {i} diverged"
            );
        }
        let snap = server.snapshot();
        assert_eq!(snap.completed, 6);
        assert_eq!(snap.queue_depth, 0, "ready queue drained");
        // Plain submits land on the always-present default tenant.
        assert_eq!(snap.tenants.len(), 1);
        let t = &snap.tenants[0];
        assert_eq!(t.name, "default");
        assert_eq!((t.submitted, t.admitted, t.completed), (6, 6, 6));
        assert_eq!((t.rejected, t.shed, t.expired), (0, 0, 0));
        let stats = server.shutdown();
        assert_eq!(stats.completed(), 6);
    }

    #[test]
    fn sched_server_routes_tenants_and_calibrates() {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let cfg = ServeConfig {
            sched: Some(
                SchedConfig::new()
                    .tenant(TenantSpec::new("interactive").weight(3.0))
                    .tenant(TenantSpec::new("batch").priority(Priority::Low)),
            ),
            ..small_cfg()
        };
        let server = Server::start(net, cfg);
        server.prewarm().unwrap();
        let interactive = TenantId(1);
        let batch = TenantId(2);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let opts = SubmitOptions::tenant(if i % 2 == 0 { interactive } else { batch });
                server
                    .submit_with(synth::ifmap(&shape, 1, i as u64), opts)
                    .unwrap()
            })
            .collect();
        for handle in handles {
            handle.wait().unwrap();
        }
        let tenants = server.tenants();
        assert_eq!(tenants.len(), 3);
        assert_eq!(tenants[interactive.index()].completed, 2);
        assert_eq!(tenants[batch.index()].completed, 2);
        // Workers fed the estimator, so completion estimates are live.
        let Front::Sched(shared) = &server.front else {
            panic!("sched config must build the sched front")
        };
        assert!(shared.admission.estimator().samples() > 0);
        assert!(shared.admission.estimator().ns_per_cycle().unwrap() > 0.0);
        // An unknown tenant is rejected with a typed error.
        let err = server
            .submit_with(
                synth::ifmap(&shape, 1, 9),
                SubmitOptions::tenant(TenantId(77)),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Admission(AdmissionError::UnknownTenant(77))
        ));
        // Registering it live makes the same id usable.
        let late = server.register_tenant(TenantSpec::new("late")).unwrap();
        assert_eq!(late, TenantId(3));
        server
            .submit_with(synth::ifmap(&shape, 1, 9), SubmitOptions::tenant(late))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(server.tenants()[late.index()].completed, 1);
        server.shutdown();
    }

    #[test]
    fn sched_server_rejects_passed_deadlines_and_expires_queued_work() {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let server = Server::start(net, sched_cfg());
        // A zero deadline has always already passed at admission.
        let err = server
            .submit_with(
                synth::ifmap(&shape, 1, 1),
                SubmitOptions::default().deadline(Duration::ZERO),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Admission(AdmissionError::DeadlinePassed)
        ));
        let snap = server.snapshot();
        assert_eq!(snap.tenants[0].rejected, 1);
        assert_eq!(snap.completed, 0);
        // A generous deadline admits and completes.
        server
            .submit_with(
                synth::ifmap(&shape, 1, 2),
                SubmitOptions::default().deadline(Duration::from_secs(60)),
            )
            .unwrap()
            .wait()
            .unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.completed(), 1);
    }

    #[test]
    fn sched_shutdown_drains_in_flight_requests() {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let server = Server::start(net, sched_cfg());
        let handles: Vec<_> = (0..8)
            .map(|i| server.submit(synth::ifmap(&shape, 1, i)).unwrap())
            .collect();
        let stats = server.shutdown(); // must not drop queued work
        assert_eq!(stats.completed(), 8);
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
    }
}
