//! The request runtime: submission queue, dynamic batcher and the
//! supervised multi-array scheduler.
//!
//! ```text
//!  submit()──►[bounded MPSC queue]──►batcher──►[BatchQueue]─┬─►worker 0 (Cluster of A arrays)
//!   blocks when full (backpressure)   coalesces up to       ├─►worker 1 (Cluster of A arrays)
//!                                     max_batch / max_wait  └─►worker W-1      │
//!                                                                     supervisor restarts the dead
//! ```
//!
//! With a [`SchedConfig`] the FIFO front-end is replaced by the
//! scheduling layer ([`crate::sched`]) — per-tenant admission control
//! in `submit_with`, then a deadline/priority [`ReadyQueue`] the
//! batcher drains instead of the MPSC channel:
//!
//! ```text
//!  submit_with(opts)──►admission──►[ReadyQueue: tier→DRR→EDF]──►batcher──►[BatchQueue]──►workers
//!      tenant, deadline,  reject infeasible /   expired entries shed        (unchanged)
//!      priority           over-quota / burn     at dispatch
//! ```
//!
//! Each worker owns a private [`eyeriss_cluster::Cluster`] — array-level
//! parallelism inside a batch flows through `eyeriss-par`'s
//! thread-per-array executor — and executes batches from precompiled
//! plans fetched from the shared [`crate::PlanCache`]. Every completed
//! request carries a queue/compile/execute latency breakdown; the
//! server aggregates p50/p99 and throughput in [`ServerStats`].
//!
//! # Fault tolerance
//!
//! Workers run batches under `catch_unwind`; a supervisor thread
//! restarts a worker that panics (the in-flight batch's requests fail
//! with a typed [`ServeError::WorkerLost`] — never a hung client — via
//! each request's drop guard). Typed transient failures from the
//! cluster (an ABFT [`ClusterError::Corrupted`] mismatch or an injected
//! [`ClusterError::Crashed`]) retry with bounded backoff through
//! [`BatchQueue::requeue`]; arrays that fail
//! [`RecoveryPolicy::quarantine_after`] consecutive times are
//! quarantined and the worker re-plans onto its healthy subset. A
//! worker whose every array is quarantined retires, shrinking the pool
//! in the admission estimates. Deterministic fault injection opts in
//! via [`ServeConfig::faults`]; ABFT via [`ServeConfig::abft`]; both
//! are off by default and cost one branch when disabled.

use crate::attrib::Attribution;
use crate::batch::{collect_batch, BatchPolicy};
use crate::error::ServeError;
use crate::metrics::{LatencyBreakdown, RequestRecord, ServerSnapshot, ServerStats};
use crate::plan::{CompiledPlan, PlanCompiler, StagePlan};
use crate::recover::{BatchQueue, RecoveryPolicy};
use crate::sched::queue::{PushError, Pushed, ReadyQueue};
use crate::sched::tenant::TenantState;
use crate::sched::{
    AdmissionController, AdmissionError, AdmitRequest, Backlog, Priority, SchedConfig, TenantId,
    TenantRegistry, TenantSnapshot, TenantSpec,
};
use eyeriss_arch::cost::CostReport;
use eyeriss_arch::AcceleratorConfig;
use eyeriss_cluster::{Cluster, ClusterError, ClusterHealth};
use eyeriss_nn::network::Network;
use eyeriss_nn::{reference, Fix16, LayerProblem, Tensor4};
use eyeriss_sim::fault::{FaultInjector, FaultPlan};
use eyeriss_sim::Accelerator;
use eyeriss_telemetry::{
    Counter, Gauge, Histogram, RetroSpan, SloMonitor, SloSpec, Telemetry, TraceContext,
    REQUEST_ROW_TID,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The per-batch-size network plans shared by every worker: each
/// `(batch size, cluster width)` the pool can need maps to one
/// immutable [`Arc<CompiledPlan>`], compiled once and handed out by
/// reference — workers never lock the layer-level plan cache (or clone
/// a plan) at request time. Widths below the configured array count
/// exist only on degraded clusters (quarantined arrays); their
/// compilers are derived via [`PlanCompiler::resized`] and share the
/// base compiler's content-keyed layer cache.
struct NetPlans {
    net: Arc<Network>,
    base: Arc<PlanCompiler>,
    compilers: Mutex<HashMap<usize, Arc<PlanCompiler>>>,
    by_batch: Mutex<HashMap<(usize, usize), Arc<CompiledPlan>>>,
    /// Per-batch-size attribution basis — the plan's `(cost report,
    /// analytic delay)` — computed at most once per size, so traced
    /// requests never re-price the network on the hot path.
    basis_by_batch: Mutex<HashMap<usize, Arc<(CostReport, f64)>>>,
}

impl NetPlans {
    fn new(net: Arc<Network>, compiler: Arc<PlanCompiler>) -> Self {
        let mut compilers = HashMap::new();
        compilers.insert(compiler.arrays(), Arc::clone(&compiler));
        NetPlans {
            net,
            base: compiler,
            compilers: Mutex::new(compilers),
            by_batch: Mutex::new(HashMap::new()),
            basis_by_batch: Mutex::new(HashMap::new()),
        }
    }

    /// The compiler for a cluster of `width` arrays (the base compiler
    /// at full width, a cache-sharing resize below it).
    fn compiler_for(&self, width: usize) -> Arc<PlanCompiler> {
        let mut map = self
            .compilers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(width)
                .or_insert_with(|| Arc::new(self.base.resized(width))),
        )
    }

    /// The network plan for batch size `b` on a cluster of `width`
    /// healthy arrays — a shared handle, compiled at most once per
    /// `(size, width)` (a lost race wastes one duplicate compile, which
    /// itself hits the layer cache).
    fn get_for(&self, b: usize, width: usize) -> Result<Arc<CompiledPlan>, ServeError> {
        if let Some(plan) = self
            .by_batch
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&(b, width))
        {
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(self.compiler_for(width).compile_network(&self.net, b)?);
        let mut plans = self.by_batch.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(Arc::clone(plans.entry((b, width)).or_insert(plan)))
    }

    /// [`NetPlans::get_for`] at the configured (full) cluster width.
    fn get(&self, b: usize) -> Result<Arc<CompiledPlan>, ServeError> {
        self.get_for(b, self.base.arrays())
    }

    /// The attribution basis for `plan`: its full [`CostReport`] under
    /// the compiler's cost model and its analytic delay, shared and
    /// memoized per batch size.
    fn attribution_basis(&self, plan: &CompiledPlan) -> Arc<(CostReport, f64)> {
        let mut memo = self
            .basis_by_batch
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(memo.entry(plan.batch).or_insert_with(|| {
            Arc::new((
                plan.cost_report(self.base.cost_model().as_ref()),
                plan.analytic_delay(),
            ))
        }))
    }
}

/// Server sizing and batching policy.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulated arrays per worker cluster.
    pub arrays: usize,
    /// Worker threads (each owning one cluster). The simulated-array
    /// pool is `workers x arrays`.
    pub workers: usize,
    /// Dynamic batching bounds.
    pub policy: BatchPolicy,
    /// Submission-queue depth; a full queue blocks [`Server::submit`]
    /// (backpressure) and fails [`Server::try_submit`].
    pub queue_capacity: usize,
    /// Per-array hardware configuration.
    pub hw: AcceleratorConfig,
    /// Telemetry instance the server records into. `None` (the
    /// default) gives the server a private, always-enabled instance so
    /// [`Server::snapshot`] is live out of the box; pass a shared
    /// instance to fold serve/cluster/sim metrics into one timeline
    /// (e.g. [`eyeriss_telemetry::Telemetry::global`], or the engine's
    /// via its builder).
    pub telemetry: Option<Telemetry>,
    /// Service-level objectives evaluated live by the server's
    /// [`SloMonitor`] (empty = monitoring off). A breach dumps the
    /// flight recorder; see [`Server::slo_monitor`].
    pub slos: Vec<SloSpec>,
    /// Capacity of the flight recorder: how many recent per-request
    /// [`Attribution`] summaries a breach dump covers.
    pub flight_capacity: usize,
    /// Scheduling layer configuration. `None` (the default) keeps the
    /// legacy FIFO path; `Some` routes every submit through tenant
    /// admission control and the deadline/priority ready queue (see
    /// [`crate::sched`]).
    pub sched: Option<SchedConfig>,
    /// Deterministic fault-injection schedule. `None` or an empty plan
    /// (the default) means no injection and zero hot-path cost; see
    /// [`eyeriss_sim::fault`].
    pub faults: Option<FaultPlan>,
    /// ABFT checksum verification of every executed conv tile:
    /// detected corruption fails the batch with a retryable
    /// [`ClusterError::Corrupted`] instead of returning wrong numbers.
    /// Off by default.
    pub abft: bool,
    /// Retry, backoff and quarantine policy for faulted batches.
    pub recovery: RecoveryPolicy,
}

impl ServeConfig {
    /// A small default: two workers of two arrays each, default batching
    /// bounds, and the fabricated chip's per-array configuration.
    pub fn new() -> Self {
        ServeConfig {
            arrays: 2,
            workers: 2.min(eyeriss_par::num_threads()).max(1),
            policy: BatchPolicy::default(),
            queue_capacity: 64,
            hw: AcceleratorConfig::eyeriss_chip(),
            telemetry: None,
            slos: Vec::new(),
            flight_capacity: 256,
            sched: None,
            faults: None,
            abft: false,
            recovery: RecoveryPolicy::new(),
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

/// Pre-resolved handles for every serve-layer metric, so the hot paths
/// never touch the registry lock. Cloning shares the same storage.
#[derive(Clone)]
struct ServeTele {
    queue_depth: Gauge,
    inflight_batches: Gauge,
    live_workers: Gauge,
    completed: Counter,
    shed: Counter,
    expired: Counter,
    retries: Counter,
    worker_restarts: Counter,
    failed: Counter,
    queue_ns: Histogram,
    compile_ns: Histogram,
    execute_ns: Histogram,
    total_ns: Histogram,
    batch_size: Histogram,
    delay_residual: Histogram,
}

impl ServeTele {
    fn resolve(tele: &Telemetry) -> Self {
        ServeTele {
            queue_depth: tele.gauge("serve.queue_depth"),
            inflight_batches: tele.gauge("serve.inflight_batches"),
            live_workers: tele.gauge("serve.live_workers"),
            completed: tele.counter("serve.completed"),
            shed: tele.counter("serve.shed"),
            expired: tele.counter("serve.expired"),
            retries: tele.counter("serve.retries"),
            worker_restarts: tele.counter("serve.worker_restarts"),
            failed: tele.counter("serve.failed"),
            queue_ns: tele.histogram("serve.queue_ns"),
            compile_ns: tele.histogram("serve.compile_ns"),
            execute_ns: tele.histogram("serve.execute_ns"),
            total_ns: tele.histogram("serve.total_ns"),
            batch_size: tele.histogram("serve.batch_size"),
            delay_residual: tele.histogram("serve.delay_residual"),
        }
    }
}

/// One in-flight request.
struct Pending {
    id: u64,
    input: Tensor4<Fix16>,
    submitted: Instant,
    trace: TraceContext,
    /// Taken exactly once by [`Pending::respond`]. A `Pending` dropped
    /// with the sender still armed died mid-flight (a worker panic, a
    /// closed pool) — its `Drop` sends a typed
    /// [`ServeError::WorkerLost`], so no client ever hangs.
    tx: Option<Sender<Result<Response, ServeError>>>,
    /// Scheduling provenance — present on sched-enabled servers only.
    meta: Option<ReqMeta>,
    /// `serve.failed` handle, carried so the drop guard can account a
    /// lost request without reaching the server.
    failed: Counter,
    /// Transient-fault retries this request's batch has burned.
    attempts: u32,
}

impl Pending {
    /// Delivers the result (first call wins; later calls no-op).
    fn respond(&mut self, result: Result<Response, ServeError>) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(result);
        }
    }

    /// Fails the request with full accounting: the `serve.failed`
    /// counter, the tenant's failed count, and a typed error to the
    /// client.
    fn fail(&mut self, err: ServeError) {
        self.failed.inc();
        if let Some(meta) = &self.meta {
            meta.tenant.note_failed();
        }
        self.respond(Err(err));
    }

    /// Drops the responder without the worker-lost accounting — for
    /// submit-side rejections, where the caller already holds a typed
    /// error and the handle never escaped.
    fn disarm(&mut self) {
        self.tx = None;
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        if self.tx.is_some() {
            self.fail(ServeError::WorkerLost);
        }
    }
}

/// Scheduling metadata riding one request through the ready queue to
/// the worker that completes (or sheds) it.
struct ReqMeta {
    tenant: Arc<TenantState>,
    /// Absolute deadline on the telemetry epoch timeline; checked again
    /// at worker pickup so a request that outlived its deadline in the
    /// dispatch pipeline expires instead of completing late.
    deadline_ns: Option<u64>,
}

/// Per-request scheduling options for
/// [`Server::submit_with`] — tenant identity, an optional
/// deadline and a priority override.
///
/// On servers without a [`SchedConfig`] the options are ignored (the
/// legacy FIFO has no tenants or deadlines).
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// The submitting tenant (default: [`TenantId::DEFAULT`]).
    pub tenant: TenantId,
    /// Relative deadline from submission; the request is rejected at
    /// admission if its estimated completion misses it, and shed at
    /// dispatch if it expires in queue. `None` = best effort.
    pub deadline: Option<Duration>,
    /// Overrides the tenant's configured [`Priority`] for this request.
    pub priority: Option<Priority>,
}

impl SubmitOptions {
    /// Options for `tenant` with no deadline and its configured
    /// priority.
    pub fn tenant(tenant: TenantId) -> SubmitOptions {
        SubmitOptions {
            tenant,
            ..SubmitOptions::default()
        }
    }

    /// Sets the relative deadline.
    pub fn deadline(mut self, deadline: Duration) -> SubmitOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the priority override.
    pub fn priority(mut self, priority: Priority) -> SubmitOptions {
        self.priority = Some(priority);
        self
    }
}

/// A completed inference.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request id assigned at submission.
    pub id: u64,
    /// The network output for this request (`[1][M][E][E]`), bit-exact
    /// against a single-array simulation of the same input.
    pub output: Tensor4<Fix16>,
    /// Where this request's latency went.
    pub latency: LatencyBreakdown,
    /// How many requests shared the batch.
    pub batch_size: usize,
    /// Energy/delay attribution for this request — present whenever
    /// the server's telemetry instance was enabled at execution time.
    pub attribution: Option<Attribution>,
}

/// The caller's side of one submitted request.
#[derive(Debug)]
pub struct RequestHandle {
    id: u64,
    trace: u64,
    rx: Receiver<Result<Response, ServeError>>,
}

impl RequestHandle {
    /// The request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The trace id minted at submission (0 when telemetry is
    /// disabled) — the key tying this request to its span tree in the
    /// server's telemetry snapshot.
    pub fn trace_id(&self) -> u64 {
        self.trace
    }

    /// Blocks until the request completes.
    ///
    /// # Errors
    ///
    /// Returns the worker's error for this batch;
    /// [`ServeError::WorkerLost`] if the responder vanished mid-flight
    /// without delivering anything (every in-runtime loss path sends
    /// the same typed error explicitly, so this is the uniform
    /// worst-case answer — never a hang).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().map_err(|_| ServeError::WorkerLost)?
    }
}

/// The submission front-end: the legacy FIFO channel, or the
/// scheduling layer.
enum Front {
    Fifo(SyncSender<Pending>),
    Sched(Arc<SchedShared>),
}

/// Shared state of a sched-enabled server: the ready queue the batcher
/// pulls from, the tenant registry, the admission controller, and the
/// memoized batch-1 analytic delay the completion estimate prices.
struct SchedShared {
    queue: ReadyQueue<Pending>,
    registry: TenantRegistry,
    admission: AdmissionController,
    unit_cycles: OnceLock<Option<f64>>,
}

/// How a worker's loop ended, reported to the supervisor.
enum WorkerExit {
    /// The dispatch queue closed and drained: clean shutdown.
    Shutdown,
    /// Every array in this worker's cluster is quarantined; the worker
    /// handed its batch back and left the pool.
    Retired,
    /// The worker panicked mid-batch (injected or real); the
    /// supervisor respawns the slot.
    Died,
}

/// Everything a worker (and the supervisor respawning workers) needs,
/// shared once behind an `Arc`.
struct WorkerShared {
    queue: Arc<BatchQueue<Vec<Pending>>>,
    net: Arc<Network>,
    plans: Arc<NetPlans>,
    records: Arc<Mutex<Vec<RequestRecord>>>,
    tele: Telemetry,
    metrics: ServeTele,
    monitor: SloMonitor,
    sched: Option<Arc<SchedShared>>,
    /// Per-slot health records — shared with each slot's cluster and
    /// *surviving* worker restarts, so a quarantine outlives the panic
    /// that exposed the bad array.
    healths: Vec<Arc<ClusterHealth>>,
    faults: Option<FaultInjector>,
    recovery: RecoveryPolicy,
    abft: bool,
    arrays: usize,
    hw: AcceleratorConfig,
}

/// Spawns worker `idx`: builds its private cluster around the slot's
/// persistent health record and runs the loop, reporting the exit to
/// the supervisor.
fn spawn_worker(
    idx: usize,
    shared: &Arc<WorkerShared>,
    exit_tx: Sender<(usize, WorkerExit)>,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        let cluster = Cluster::new(shared.arrays, shared.hw)
            .with_telemetry(shared.tele.clone())
            .with_health(Arc::clone(&shared.healths[idx]))
            .with_faults(shared.faults.clone())
            .array_base(idx * shared.arrays)
            .abft(shared.abft);
        let pool_chip = Accelerator::new(shared.hw).telemetry(shared.tele.clone());
        let exit = worker_loop(idx, &shared, &cluster, pool_chip);
        let _ = exit_tx.send((idx, exit));
    })
}

/// An inference server for one network.
///
/// # Example
///
/// ```no_run
/// use eyeriss_serve::{ServeConfig, Server};
/// use eyeriss_nn::network::NetworkBuilder;
/// use eyeriss_nn::synth;
///
/// let net = NetworkBuilder::new(3, 19).conv("C1", 8, 3, 2)?.build(7);
/// let input = synth::ifmap(&net.stages()[0].shape, 1, 42);
/// let server = Server::start(net, ServeConfig::new());
/// let response = server.submit(input)?.wait()?;
/// println!("request {} done in {:?}", response.id, response.latency.total());
/// let stats = server.shutdown();
/// assert_eq!(stats.completed(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Server {
    front: Front,
    batcher: JoinHandle<()>,
    supervisor: JoinHandle<()>,
    records: Arc<Mutex<Vec<RequestRecord>>>,
    compiler: Arc<PlanCompiler>,
    plans: Arc<NetPlans>,
    max_batch: usize,
    started: Instant,
    next_id: AtomicU64,
    input_dims: (usize, usize),
    tele: Telemetry,
    metrics: ServeTele,
    monitor: SloMonitor,
    worker_count: usize,
    healths: Vec<Arc<ClusterHealth>>,
    faults: Option<FaultInjector>,
}

impl Server {
    /// Starts batcher, worker and supervisor threads serving `net` with
    /// a fresh plan cache.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.arrays` or `cfg.workers` is zero.
    pub fn start(net: Network, cfg: ServeConfig) -> Self {
        let compiler = PlanCompiler::new(cfg.arrays, cfg.hw);
        Server::start_with_compiler(net, cfg, compiler)
    }

    /// [`Server::start`] with a caller-provided compiler, so a warm
    /// [`crate::PlanCache`] can be shared across server restarts (or
    /// across servers) via [`PlanCompiler::with_cache`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers` is zero or the compiler's cluster width
    /// disagrees with `cfg.arrays`.
    pub fn start_with_compiler(net: Network, cfg: ServeConfig, compiler: PlanCompiler) -> Self {
        assert!(cfg.workers > 0, "server needs at least one worker");
        assert_eq!(
            compiler.arrays(),
            cfg.arrays,
            "compiler cluster width must match the server's"
        );
        let net = Arc::new(net);
        let compiler = Arc::new(compiler);
        let plans = Arc::new(NetPlans::new(Arc::clone(&net), Arc::clone(&compiler)));
        let records = Arc::new(Mutex::new(Vec::new()));
        let input_dims = net.input_dims();
        let tele = cfg.telemetry.unwrap_or_else(Telemetry::new_enabled);
        let metrics = ServeTele::resolve(&tele);
        let monitor = SloMonitor::new(cfg.slos, cfg.flight_capacity);
        // One shared injector: clones share run counters, so a spec's
        // timeline is fleet-global and survives worker restarts.
        // Telemetry must attach before the first clone escapes.
        let faults = cfg
            .faults
            .as_ref()
            .filter(|p| !p.is_empty())
            .map(|p| FaultInjector::new(p.clone()).with_telemetry(&tele));
        let healths: Vec<_> = (0..cfg.workers)
            .map(|_| Arc::new(ClusterHealth::new(cfg.arrays)))
            .collect();
        metrics.live_workers.set(cfg.workers as i64);

        // The batch queue is bounded by the worker count so that a slow
        // pool pushes back through the batcher into the submission queue
        // (FIFO) or onto the admission estimate (sched). Workers put
        // transiently-faulted batches *back* via its unbounded
        // front-of-queue requeue — the operation a plain channel lacks.
        let queue = Arc::new(BatchQueue::<Vec<Pending>>::new(cfg.workers));

        let policy = cfg.policy;
        let (front, batcher) = match cfg.sched.clone() {
            None => {
                let (submit_tx, submit_rx) =
                    mpsc::sync_channel::<Pending>(cfg.queue_capacity.max(1));
                let queue_depth = metrics.queue_depth.clone();
                let queue = Arc::clone(&queue);
                let batcher = std::thread::spawn(move || {
                    while let Some(batch) = collect_batch(&submit_rx, &policy) {
                        queue_depth.add(-(batch.len() as i64));
                        if queue.push(batch).is_err() {
                            break; // the pool is gone
                        }
                    }
                    queue.close();
                });
                (Front::Fifo(submit_tx), batcher)
            }
            Some(sc) => {
                let capacity = if sc.capacity > 0 {
                    sc.capacity
                } else {
                    cfg.queue_capacity.max(1)
                };
                let registry = TenantRegistry::new(tele.clone());
                for spec in sc.tenants {
                    registry.register(spec);
                }
                let shared = Arc::new(SchedShared {
                    queue: ReadyQueue::new(
                        capacity,
                        sc.quantum,
                        sc.aging.as_nanos().min(u64::MAX as u128) as u64,
                    ),
                    registry,
                    admission: AdmissionController::new(cfg.workers, cfg.policy.max_batch),
                    unit_cycles: OnceLock::new(),
                });
                let batcher = {
                    let shared = Arc::clone(&shared);
                    let tele = tele.clone();
                    let metrics = metrics.clone();
                    let queue = Arc::clone(&queue);
                    std::thread::spawn(move || {
                        let now = || tele.since_epoch(Instant::now());
                        while let Some(drained) = shared.queue.next_batch(&policy, now) {
                            for mut pending in drained.expired {
                                metrics.queue_depth.dec();
                                metrics.expired.inc();
                                if let Some(meta) = &pending.meta {
                                    meta.tenant.note_expired();
                                }
                                pending.respond(Err(AdmissionError::DeadlinePassed.into()));
                            }
                            if drained.batch.is_empty() {
                                continue;
                            }
                            metrics.queue_depth.add(-(drained.batch.len() as i64));
                            if queue.push(drained.batch).is_err() {
                                break; // the pool is gone
                            }
                        }
                        queue.close();
                    })
                };
                (Front::Sched(shared), batcher)
            }
        };

        let shared = Arc::new(WorkerShared {
            queue: Arc::clone(&queue),
            net: Arc::clone(&net),
            plans: Arc::clone(&plans),
            records: Arc::clone(&records),
            tele: tele.clone(),
            metrics: metrics.clone(),
            monitor: monitor.clone(),
            sched: match &front {
                Front::Sched(s) => Some(Arc::clone(s)),
                Front::Fifo(_) => None,
            },
            healths: healths.clone(),
            faults: faults.clone(),
            recovery: cfg.recovery,
            abft: cfg.abft,
            arrays: cfg.arrays,
            hw: cfg.hw,
        });

        let (exit_tx, exit_rx) = mpsc::channel::<(usize, WorkerExit)>();
        let mut handles: Vec<Option<JoinHandle<()>>> = (0..cfg.workers)
            .map(|i| Some(spawn_worker(i, &shared, exit_tx.clone())))
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut alive = handles.len();
                while alive > 0 {
                    let Ok((idx, exit)) = exit_rx.recv() else {
                        break;
                    };
                    if let Some(handle) = handles[idx].take() {
                        let _ = handle.join();
                    }
                    match exit {
                        WorkerExit::Died => {
                            shared.metrics.worker_restarts.inc();
                            handles[idx] = Some(spawn_worker(idx, &shared, exit_tx.clone()));
                        }
                        WorkerExit::Retired | WorkerExit::Shutdown => alive -= 1,
                    }
                }
                // The pool is gone — drained shutdown, or every worker
                // retired. Close the dispatch queue and drain whatever
                // is still queued: each dropped request's guard sends a
                // typed `WorkerLost`, so no client waits forever.
                shared.queue.close();
                while shared.queue.pop().is_some() {}
            })
        };

        Server {
            front,
            batcher,
            supervisor,
            records,
            compiler,
            plans,
            max_batch: cfg.policy.max_batch.max(1),
            started: Instant::now(),
            next_id: AtomicU64::new(0),
            input_dims,
            tele,
            metrics,
            monitor,
            worker_count: cfg.workers,
            healths,
            faults,
        }
    }

    /// Compiles the served network's plans for every batch size the
    /// batcher can form (`1..=max_batch`), so no request ever pays a
    /// plan search at serving time. Returns one shared
    /// [`crate::CompiledPlan`] handle per batch size, in increasing-size
    /// order — the same `Arc`s the workers will execute from.
    ///
    /// # Errors
    ///
    /// Fails if any weighted stage has no feasible plan at some batch
    /// size.
    pub fn prewarm(&self) -> Result<Vec<Arc<CompiledPlan>>, ServeError> {
        (1..=self.max_batch).map(|n| self.plans.get(n)).collect()
    }

    fn pending(&self, input: Tensor4<Fix16>) -> Result<(Pending, RequestHandle), ServeError> {
        let (c, h) = self.input_dims;
        if input.dims() != [1, c, h, h] {
            return Err(ServeError::Input(format!(
                "expected [1, {c}, {h}, {h}], got {:?}",
                input.dims()
            )));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let trace = self.tele.mint_trace();
        let (tx, rx) = mpsc::channel();
        Ok((
            Pending {
                id,
                input,
                submitted: Instant::now(),
                trace,
                tx: Some(tx),
                meta: None,
                failed: self.metrics.failed.clone(),
                attempts: 0,
            },
            RequestHandle {
                id,
                trace: trace.trace,
                rx,
            },
        ))
    }

    /// Feeds one admission decision to the SLO monitor when a shed
    /// spec is configured (a relaxed load plus a bool check otherwise).
    fn observe_admission(&self, shed: bool) {
        if self.monitor.wants_shed() && self.tele.enabled() {
            self.monitor
                .observe_shed(self.tele.since_epoch(Instant::now()), shed);
        }
    }

    /// Submits one single-image request (`[1][C][H][H]`), blocking while
    /// the submission queue is full — the backpressure path. On a
    /// sched-enabled server this is
    /// [`Server::submit_with`] under default [`SubmitOptions`] (the
    /// default tenant, no deadline), and admission may reject instead
    /// of blocking.
    ///
    /// # Errors
    ///
    /// Fails on mismatched input dimensions, a shut-down server, or —
    /// sched only — an [`AdmissionError`].
    pub fn submit(&self, input: Tensor4<Fix16>) -> Result<RequestHandle, ServeError> {
        match &self.front {
            Front::Fifo(tx) => {
                let (pending, handle) = self.pending(input)?;
                // Increment before the send: the matching decrement (in
                // the batcher) can only follow a successful send, so the
                // gauge never goes negative (counting a blocked submit
                // as queued).
                self.metrics.queue_depth.inc();
                if let Err(e) = tx.send(pending) {
                    e.0.disarm_for_caller();
                    self.metrics.queue_depth.dec();
                    return Err(ServeError::ShutDown);
                }
                self.observe_admission(false);
                Ok(handle)
            }
            Front::Sched(shared) => self.submit_sched(shared, input, SubmitOptions::default()),
        }
    }

    /// Non-blocking [`Server::submit`]: a full queue returns
    /// [`ServeError::Saturated`] immediately instead of waiting (load
    /// shedding for open-loop clients). The scheduling path never
    /// blocks on a full queue, so on a sched-enabled server this is
    /// exactly [`Server::submit`] (full-queue rejections surface as
    /// [`AdmissionError::QueueFull`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::Saturated`] when the queue is full, plus every
    /// [`Server::submit`] failure mode.
    pub fn try_submit(&self, input: Tensor4<Fix16>) -> Result<RequestHandle, ServeError> {
        match &self.front {
            Front::Fifo(tx) => {
                let (pending, handle) = self.pending(input)?;
                self.metrics.queue_depth.inc();
                match tx.try_send(pending) {
                    Ok(()) => {
                        self.observe_admission(false);
                        Ok(handle)
                    }
                    Err(TrySendError::Full(mut p)) => {
                        p.disarm();
                        self.metrics.queue_depth.dec();
                        self.metrics.shed.inc();
                        self.observe_admission(true);
                        Err(ServeError::Saturated)
                    }
                    Err(TrySendError::Disconnected(mut p)) => {
                        p.disarm();
                        self.metrics.queue_depth.dec();
                        Err(ServeError::ShutDown)
                    }
                }
            }
            Front::Sched(shared) => self.submit_sched(shared, input, SubmitOptions::default()),
        }
    }

    /// Submits one request with explicit scheduling options — tenant,
    /// deadline, priority. On a FIFO server (no [`SchedConfig`]) the
    /// options are ignored and this is [`Server::submit`].
    ///
    /// # Errors
    ///
    /// Every [`Server::submit`] failure mode plus a typed
    /// [`ServeError::Admission`] when the scheduling layer rejects:
    /// unknown tenant, passed or infeasible deadline, over-quota,
    /// burn-rate shed, or a full queue the request does not outrank.
    pub fn submit_with(
        &self,
        input: Tensor4<Fix16>,
        opts: SubmitOptions,
    ) -> Result<RequestHandle, ServeError> {
        match &self.front {
            Front::Fifo(_) => self.submit(input),
            Front::Sched(shared) => self.submit_sched(shared, input, opts),
        }
    }

    /// The scheduling submit path: admission control, then a ranked
    /// push into the ready queue.
    fn submit_sched(
        &self,
        shared: &SchedShared,
        input: Tensor4<Fix16>,
        opts: SubmitOptions,
    ) -> Result<RequestHandle, ServeError> {
        let Some(tenant) = shared.registry.get(opts.tenant) else {
            return Err(AdmissionError::UnknownTenant(opts.tenant.0).into());
        };
        let (mut pending, handle) = self.pending(input)?;
        tenant.note_submitted();
        let now_ns = self.tele.since_epoch(pending.submitted);
        let deadline_ns = opts
            .deadline
            .map(|d| now_ns.saturating_add(d.as_nanos().min(u64::MAX as u128) as u64));
        let tier = opts.priority.unwrap_or(tenant.spec().priority).tier();
        // The batch-1 analytic delay prices the completion estimate;
        // compiled lazily once (prewarmed servers pay nothing here).
        let unit_cycles = *shared.unit_cycles.get_or_init(|| {
            self.plans
                .get(1)
                .ok()
                .map(|p| self.plans.attribution_basis(&p).1)
        });
        let backlog = Backlog {
            queued: self.metrics.queue_depth.get(),
            inflight: self.metrics.inflight_batches.get(),
        };
        if let Err(e) = shared.admission.admit(
            &tenant,
            AdmitRequest {
                tier,
                deadline_ns,
                now_ns,
                unit_cycles,
                backlog,
                burning: self.monitor.burning(),
            },
        ) {
            pending.disarm();
            tenant.note_rejected(&e);
            self.metrics.shed.inc();
            self.observe_admission(true);
            return Err(e.into());
        }
        pending.meta = Some(ReqMeta {
            tenant: Arc::clone(&tenant),
            deadline_ns,
        });
        self.metrics.queue_depth.inc();
        let weight = tenant.spec().weight;
        match shared.queue.push(
            pending,
            opts.tenant.index(),
            weight,
            tier,
            deadline_ns,
            now_ns,
        ) {
            Ok(Pushed::Queued) => {}
            Ok(Pushed::Displaced(mut victim)) => {
                // The new entry took the victim's slot: net queue depth
                // is unchanged, the victim is shed.
                self.metrics.queue_depth.dec();
                self.metrics.shed.inc();
                if let Some(meta) = &victim.meta {
                    meta.tenant.note_shed();
                }
                self.observe_admission(true);
                victim.respond(Err(AdmissionError::Shed.into()));
            }
            Err(PushError::Full(mut p)) => {
                p.disarm();
                self.metrics.queue_depth.dec();
                let e = AdmissionError::QueueFull;
                tenant.note_rejected(&e);
                self.metrics.shed.inc();
                self.observe_admission(true);
                return Err(e.into());
            }
            Err(PushError::Closed(mut p)) => {
                p.disarm();
                self.metrics.queue_depth.dec();
                return Err(ServeError::ShutDown);
            }
        }
        tenant.note_admitted();
        self.observe_admission(false);
        Ok(handle)
    }

    /// Registers a new tenant on a sched-enabled server, returning its
    /// id for [`SubmitOptions::tenant`]. Returns `None` on a FIFO
    /// server (no scheduling layer to register with).
    pub fn register_tenant(&self, spec: TenantSpec) -> Option<TenantId> {
        match &self.front {
            Front::Fifo(_) => None,
            Front::Sched(shared) => Some(shared.registry.register(spec)),
        }
    }

    /// Live per-tenant counters in tenant-id order; empty on a FIFO
    /// server.
    pub fn tenants(&self) -> Vec<TenantSnapshot> {
        match &self.front {
            Front::Fifo(_) => Vec::new(),
            Front::Sched(shared) => shared.registry.snapshots(),
        }
    }

    /// The admission controller's live completion estimate for a
    /// request submitted right now — expected queue wait against the
    /// current backlog plus one service time. `None` on a FIFO server,
    /// or before the workers have fed the estimator its first sample.
    pub fn estimated_completion(&self) -> Option<Duration> {
        let Front::Sched(shared) = &self.front else {
            return None;
        };
        let unit_cycles = *shared.unit_cycles.get_or_init(|| {
            self.plans
                .get(1)
                .ok()
                .map(|p| self.plans.attribution_basis(&p).1)
        });
        let backlog = Backlog {
            queued: self.metrics.queue_depth.get(),
            inflight: self.metrics.inflight_batches.get(),
        };
        let now_ns = self.tele.since_epoch(Instant::now());
        shared
            .admission
            .estimate_completion_ns(now_ns, unit_cycles, backlog)
            .map(|est| Duration::from_nanos(est.saturating_sub(now_ns)))
    }

    /// Snapshot of the plan-cache counters.
    pub fn cache_stats(&self) -> crate::plan::CacheStats {
        self.compiler.cache().stats()
    }

    /// A live, point-in-time view of the server — queue depth,
    /// in-flight batches, pool health and streaming latency quantiles —
    /// available **while requests are running**, unlike
    /// [`Server::shutdown`]'s [`ServerStats`]. With the default
    /// configuration (no injected telemetry) the backing instance is
    /// always enabled, so this is never empty once requests complete.
    pub fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            elapsed: self.started.elapsed(),
            completed: self.metrics.completed.get(),
            shed: self.metrics.shed.get(),
            queue_depth: self.metrics.queue_depth.get(),
            inflight_batches: self.metrics.inflight_batches.get(),
            workers: self.worker_count,
            live_workers: self.metrics.live_workers.get(),
            worker_restarts: self.metrics.worker_restarts.get(),
            retries: self.metrics.retries.get(),
            failed: self.metrics.failed.get(),
            quarantined_arrays: self
                .healths
                .iter()
                .map(|h| h.quarantined_count() as u64)
                .sum(),
            faults_injected: self.faults.as_ref().map_or(0, |f| f.injected()),
            faults_detected: self.tele.counter("sim.faults_detected").get(),
            cache: self.compiler.cache().stats(),
            queue_ns: self.metrics.queue_ns.snapshot(),
            compile_ns: self.metrics.compile_ns.snapshot(),
            execute_ns: self.metrics.execute_ns.snapshot(),
            total_ns: self.metrics.total_ns.snapshot(),
            batch_size: self.metrics.batch_size.snapshot(),
            delay_residual: self.metrics.delay_residual.snapshot(),
            tenants: self.tenants(),
        }
    }

    /// The live SLO monitor (configured via [`ServeConfig::slos`]):
    /// breach counts and flight-recorder dumps are readable while the
    /// server runs, and survive until [`Server::shutdown`] through the
    /// handle's clones.
    pub fn slo_monitor(&self) -> &SloMonitor {
        &self.monitor
    }

    /// The telemetry instance this server records into — spans from the
    /// workers' clusters and simulated chips land here too, so
    /// [`eyeriss_telemetry::Telemetry::snapshot`] plus
    /// [`eyeriss_telemetry::TelemetrySnapshot::chrome_trace`] yields a
    /// loadable `chrome://tracing` timeline of the serving run.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tele
    }

    /// Drains in-flight requests, stops every thread and returns the
    /// lifetime statistics.
    pub fn shutdown(self) -> ServerStats {
        let Server {
            front,
            batcher,
            supervisor,
            records,
            compiler,
            started,
            ..
        } = self;
        match front {
            // Dropping the sender disconnects the channel: the batcher
            // drains the queue, then exits (closing the batch queue
            // behind itself).
            Front::Fifo(submit_tx) => drop(submit_tx),
            // Closing the ready queue has the same contract: blocked
            // consumers drain what is queued, then observe shutdown.
            Front::Sched(shared) => shared.queue.close(),
        }
        let _ = batcher.join();
        let _ = supervisor.join();
        let records = std::mem::take(&mut *records.lock().unwrap_or_else(PoisonError::into_inner));
        ServerStats {
            records,
            elapsed: started.elapsed(),
            cache: compiler.cache().stats(),
        }
    }
}

impl Pending {
    /// [`Pending::disarm`] through an `mpsc::SendError` (the error owns
    /// the value, so the by-value wrapper keeps call sites tidy).
    fn disarm_for_caller(mut self) {
        self.disarm();
    }
}

/// One worker: picks whole batches off the shared queue and executes
/// them on its private cluster under `catch_unwind`, retrying
/// transiently-faulted batches, until the queue closes, the worker's
/// last array is quarantined, or a panic kills it.
fn worker_loop(
    idx: usize,
    shared: &WorkerShared,
    cluster: &Cluster,
    mut pool_chip: Accelerator,
) -> WorkerExit {
    while let Some(batch) = shared.queue.pop() {
        let Some(batch) = recheck_deadlines(shared, batch) else {
            continue;
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if shared.faults.as_ref().is_some_and(|f| f.poll_worker(idx)) {
                panic!("injected worker panic (chaos)");
            }
            execute_batch(shared, cluster, &mut pool_chip, batch)
        }));
        match outcome {
            // The closure owned the batch, so it dropped during the
            // unwind and every request's guard already delivered a
            // typed `WorkerLost`. The supervisor respawns this slot.
            Err(_) => return WorkerExit::Died,
            Ok(Ok(())) => {}
            Ok(Err((batch, err))) => {
                if let Some(exit) = handle_failure(shared, cluster, batch, err) {
                    return exit;
                }
            }
        }
    }
    WorkerExit::Shutdown
}

/// Re-checks deadlines at pickup (sched only): the dispatch queue holds
/// several batches, so a request can outlive its deadline between
/// dispatch and pickup. Expiring it now bounds a completed request's
/// latency by its deadline plus one batch execution. Returns the live
/// remainder, or `None` when nothing survived.
fn recheck_deadlines(shared: &WorkerShared, batch: Vec<Pending>) -> Option<Vec<Pending>> {
    if shared.sched.is_none() {
        return Some(batch);
    }
    let now_ns = shared.tele.since_epoch(Instant::now());
    let mut live = Vec::with_capacity(batch.len());
    for mut pending in batch {
        let expired = pending
            .meta
            .as_ref()
            .and_then(|m| m.deadline_ns)
            .is_some_and(|d| d < now_ns);
        if expired {
            shared.metrics.expired.inc();
            if let Some(meta) = &pending.meta {
                meta.tenant.note_expired();
            }
            pending.respond(Err(AdmissionError::DeadlinePassed.into()));
        } else {
            live.push(pending);
        }
    }
    (!live.is_empty()).then_some(live)
}

/// Executes one batch end to end and delivers the responses. A typed
/// execution error hands the batch back to the caller for retry /
/// quarantine handling instead of consuming it.
fn execute_batch(
    shared: &WorkerShared,
    cluster: &Cluster,
    pool_chip: &mut Accelerator,
    batch: Vec<Pending>,
) -> Result<(), (Vec<Pending>, ServeError)> {
    let metrics = &shared.metrics;
    let tele = &shared.tele;
    let outcome = {
        // A panic in run_batch unwinds through the guard, so the
        // inflight gauge can never leak an increment. The guard also
        // drops before responses are delivered: a client that has
        // seen its response never observes its batch as inflight.
        let _inflight = metrics.inflight_batches.scoped_inc();
        // The batch joins the first request's trace; every request's
        // queue wait links into the batch span as a flow arrow, so
        // multi-trace batches stay attributable.
        let dispatch = Instant::now();
        let batch_trace = batch.first().map_or(0, |p| p.trace.trace);
        let _root = tele.in_context(TraceContext {
            trace: batch_trace,
            parent: 0,
        });
        let batch_span = tele.span_with("serve.batch", "serve", batch.len() as u64);
        let bid = batch_span.id();
        if bid != 0 {
            for pending in &batch {
                tele.record_retro(RetroSpan {
                    name: "serve.queue",
                    cat: "serve",
                    arg: pending.id,
                    tid: REQUEST_ROW_TID,
                    ctx: pending.trace,
                    start: pending.submitted,
                    dur: dispatch.duration_since(pending.submitted),
                    link: bid,
                });
            }
        }
        // `batch_span` is still live: spans opened inside run_batch
        // on this thread parent to it through the ambient context.
        run_batch(&shared.net, &shared.plans, cluster, pool_chip, &batch, tele)
    };
    match outcome {
        Ok(done) => {
            // Calibrate the admission estimator: one sample per
            // executed batch, its plan's analytic delay against the
            // measured execute wall time.
            if let Some(sched) = &shared.sched {
                if let (Some(first), Ok(plan)) = (done.first(), shared.plans.get(batch.len())) {
                    let execute_ns =
                        first.0.latency.execute.as_nanos().min(u64::MAX as u128) as u64;
                    let cycles = shared.plans.attribution_basis(&plan).1;
                    sched.admission.estimator().observe(cycles, execute_ns);
                }
            }
            let wants_records = !shared.monitor.is_empty();
            let mut recs = shared
                .records
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for (mut pending, response) in batch.into_iter().zip(done) {
                if let Some(meta) = &pending.meta {
                    meta.tenant.note_completed();
                }
                let latency = response.0.latency;
                metrics.queue_ns.record_duration(latency.queue);
                metrics.compile_ns.record_duration(latency.compile);
                metrics.execute_ns.record_duration(latency.execute);
                metrics.total_ns.record_duration(latency.total());
                metrics.batch_size.record(response.0.batch_size as u64);
                metrics.completed.inc();
                if let Some(att) = &response.0.attribution {
                    metrics
                        .delay_residual
                        .record(att.residual_cycles().abs() as u64);
                    if wants_records {
                        shared.monitor.record(att.flight_record());
                    }
                }
                recs.push(RequestRecord {
                    id: response.0.id,
                    batch_size: response.0.batch_size,
                    latency,
                    sim_cycles: response.1,
                });
                pending.respond(Ok(response.0));
            }
            Ok(())
        }
        Err(e) => Err((batch, e)),
    }
}

/// Decides what a typed batch failure means: strike → quarantine
/// bookkeeping for the offending array, retirement when the worker's
/// cluster has no healthy arrays left, bounded-backoff retry for
/// transient faults, and a typed failure to every client once the
/// budget is spent. Returns `Some(exit)` when the worker must leave
/// the pool.
fn handle_failure(
    shared: &WorkerShared,
    cluster: &Cluster,
    mut batch: Vec<Pending>,
    err: ServeError,
) -> Option<WorkerExit> {
    // Only the cluster's fault-typed errors are retryable: a clean
    // re-execution can produce the bit-exact output a corrupted or
    // crashed one could not. Everything else (no plan, bad input) would
    // fail identically again.
    let faulty_array = match &err {
        ServeError::Cluster(
            ClusterError::Corrupted { array } | ClusterError::Crashed { array },
        ) => Some(*array),
        _ => None,
    };
    if let Some(array) = faulty_array {
        // The cluster already struck the array; consecutive strikes
        // reaching the threshold mean the fault is persistent, not
        // transient — quarantine it and re-plan on the healthy subset.
        if cluster.health().strikes(array) >= shared.recovery.quarantine_after {
            cluster.quarantine(array);
        }
        if cluster.healthy_arrays() == 0 {
            // Nothing left to execute on: hand the batch to the rest of
            // the pool and retire. The requeue bypasses the retry
            // budget — another worker's healthy cluster may complete it
            // first try.
            shared.queue.requeue(batch);
            shared.metrics.live_workers.dec();
            if let Some(sched) = &shared.sched {
                let live = shared.metrics.live_workers.get().max(1) as usize;
                sched.admission.set_workers(live);
            }
            return Some(WorkerExit::Retired);
        }
    }
    let attempt = batch.iter().map(|p| p.attempts).max().unwrap_or(0) + 1;
    if faulty_array.is_some() && attempt <= shared.recovery.max_retries {
        for pending in &mut batch {
            pending.attempts = attempt;
        }
        shared.metrics.retries.add(batch.len() as u64);
        std::thread::sleep(shared.recovery.backoff_for(attempt));
        shared.queue.requeue(batch);
    } else {
        for mut pending in batch {
            pending.fail(err.clone());
        }
    }
    None
}

/// Executes one batch end-to-end; returns one `(response, sim_cycles)`
/// per request, in batch order. With telemetry enabled, each response
/// carries an [`Attribution`] built from the executed plan's cost
/// report and the simulator's measured cycles. Plans resolve at the
/// cluster's *healthy* width, so a degraded worker transparently
/// re-plans onto its surviving arrays.
fn run_batch(
    net: &Network,
    plans: &NetPlans,
    cluster: &Cluster,
    pool_chip: &mut Accelerator,
    batch: &[Pending],
    tele: &Telemetry,
) -> Result<Vec<(Response, u64)>, ServeError> {
    let started = Instant::now();
    let b = batch.len();
    let (c, h) = net.input_dims();
    // Stack the single-image requests into one [b][C][H][H] batch: each
    // request's image is one contiguous copy, no per-element indexing.
    let mut act = Tensor4::zeros([b, c, h, h]);
    for (z, pending) in batch.iter().enumerate() {
        act.image_mut(z).copy_from_slice(pending.input.image(0));
    }

    // One shared network plan for the whole batch: every weighted stage's
    // `Arc<ClusterPlan>` is already resolved, so the execute loop touches
    // no cache lock and clones nothing.
    let t0 = Instant::now();
    let netplan = plans.get_for(b, cluster.healthy_arrays())?;
    let compile = t0.elapsed();
    let mut sim_cycles = 0u64;
    // Weighted-stage cycles only: the residual compares against
    // `analytic_delay`, which prices weighted stages.
    let mut layer_cycles = 0u64;
    for (stage, splan) in net.stages().iter().zip(&netplan.stages) {
        match splan {
            StagePlan::Pool { shape, .. } => {
                let (out, stats) = pool_chip.run_pool(shape, b, &act);
                sim_cycles += stats.total_cycles();
                act = out;
            }
            StagePlan::Layer {
                shape, relu, plan, ..
            } => {
                let weights = stage.weights.as_ref().expect("weighted stage");
                let bias = stage.bias.as_ref().expect("weighted stage");
                let problem = LayerProblem::new(*shape, b);
                let run = cluster.execute(plan, &problem, &act, weights, bias)?;
                sim_cycles += run.stats.cluster_cycles();
                layer_cycles += run.stats.cluster_cycles();
                act = reference::quantize(&run.psums, *relu);
            }
        }
    }
    let execute = started.elapsed().saturating_sub(compile);
    let completed = Instant::now();
    // One memoized (cost report, analytic delay) pair per batch size:
    // attribution costs no plan re-pricing per request.
    let basis = tele.enabled().then(|| plans.attribution_basis(&netplan));

    let [_, m, e, _] = act.dims();
    Ok(batch
        .iter()
        .enumerate()
        .map(|(z, pending)| {
            // Unstack by image: one contiguous copy per response.
            let output = Tensor4::from_vec([1, m, e, e], act.image(z).to_vec());
            let latency = LatencyBreakdown {
                queue: started.duration_since(pending.submitted),
                compile,
                execute,
            };
            let attribution = basis.as_ref().map(|basis| Attribution {
                id: pending.id,
                trace: pending.trace.trace,
                batch_size: b,
                latency,
                report: basis.0,
                analytic_delay: basis.1,
                measured_cycles: layer_cycles,
                submitted_ns: tele.since_epoch(pending.submitted),
                completed_ns: tele.since_epoch(completed),
            });
            (
                Response {
                    id: pending.id,
                    output,
                    latency,
                    batch_size: b,
                    attribution,
                },
                sim_cycles,
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_arch::GridDims;
    use eyeriss_nn::network::NetworkBuilder;
    use eyeriss_nn::synth;
    use eyeriss_sim::fault::{FaultKind, FaultSpec};

    fn tiny_net() -> Network {
        NetworkBuilder::new(3, 19)
            .conv("C1", 8, 3, 2)
            .unwrap()
            .pool("P1", 3, 2)
            .unwrap()
            .conv("C2", 12, 3, 1)
            .unwrap()
            .fully_connected("FC", 10)
            .unwrap()
            .build(7)
    }

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            arrays: 2,
            workers: 2,
            policy: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(20),
            },
            queue_capacity: 16,
            hw: AcceleratorConfig {
                grid: GridDims::new(6, 8),
                rf_bytes_per_pe: 512.0,
                buffer_bytes: 32.0 * 1024.0,
            },
            telemetry: None,
            slos: Vec::new(),
            flight_capacity: 256,
            sched: None,
            faults: None,
            abft: false,
            recovery: RecoveryPolicy::new(),
        }
    }

    #[test]
    fn serves_requests_bit_exactly_with_breakdown() {
        let net = tiny_net();
        let golden_net = net.clone();
        let server = Server::start(net, small_cfg());
        let shape = golden_net.stages()[0].shape;
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let input = synth::ifmap(&shape, 1, 100 + i);
                (i, server.submit(input).unwrap())
            })
            .collect();
        for (i, handle) in handles {
            let input = synth::ifmap(&shape, 1, 100 + i);
            let golden = golden_net.forward(1, &input);
            let response = handle.wait().unwrap();
            assert_eq!(response.output, golden, "request {i} diverged");
            assert!(response.batch_size >= 1);
            assert!(response.latency.total() >= response.latency.execute);
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed(), 6);
        assert!(stats.p99() >= stats.p50());
        // Every weighted stage went through the plan cache (batch sizes
        // may differ between batches, so only misses are deterministic).
        assert!(stats.cache.misses > 0);
        assert!(stats.records.iter().all(|r| r.sim_cycles > 0));
    }

    #[test]
    fn snapshot_is_live_and_consistent_with_final_stats() {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let server = Server::start(net, small_cfg());
        assert_eq!(server.snapshot().completed, 0);
        let handles: Vec<_> = (0..6)
            .map(|i| server.submit(synth::ifmap(&shape, 1, i)).unwrap())
            .collect();
        for handle in handles {
            handle.wait().unwrap();
        }
        let snap = server.snapshot();
        assert_eq!(snap.completed, 6);
        assert_eq!(snap.shed, 0);
        assert_eq!(snap.queue_depth, 0, "queue drained");
        assert_eq!(snap.total_ns.count(), 6);
        assert!(snap.p99() >= snap.p50());
        assert!(snap.throughput_rps() > 0.0);
        assert!(snap.mean_batch() >= 1.0);
        // A fault-free run reports a fully healthy pool.
        assert_eq!((snap.workers, snap.live_workers), (2, 2));
        assert_eq!((snap.worker_restarts, snap.retries, snap.failed), (0, 0, 0));
        assert_eq!(snap.quarantined_arrays, 0);
        assert_eq!((snap.faults_injected, snap.faults_detected), (0, 0));
        // The cluster and chip record spans into the server's instance.
        let tele = server.telemetry().snapshot();
        assert!(tele.spans.iter().any(|s| s.name == "serve.batch"));
        assert!(tele.spans.iter().any(|s| s.name == "cluster.array"));
        assert!(tele.spans.iter().any(|s| s.name == "sim.pass"));
        let trace = tele.chrome_trace();
        assert!(trace.contains("\"name\":\"cluster.array\""));

        let stats = server.shutdown();
        assert_eq!(stats.completed(), 6);
        // Streaming p50/p99 agree with the exact nearest-rank stats to
        // within the documented bucket error.
        let summary = stats.latency_summary();
        for (stream, exact) in [(snap.p50(), summary.p50), (snap.p99(), summary.p99)] {
            let bound = exact.as_nanos() as f64 * eyeriss_telemetry::RELATIVE_ERROR + 1.0;
            let delta = stream.as_nanos().abs_diff(exact.as_nanos()) as f64;
            assert!(delta <= bound, "stream {stream:?} vs exact {exact:?}");
        }
    }

    #[test]
    fn rejects_wrong_input_dims() {
        let server = Server::start(tiny_net(), small_cfg());
        let bad = Tensor4::<Fix16>::zeros([1, 3, 18, 18]);
        assert!(matches!(server.submit(bad), Err(ServeError::Input(_))));
        let batch_of_two = Tensor4::<Fix16>::zeros([2, 3, 19, 19]);
        assert!(matches!(
            server.try_submit(batch_of_two),
            Err(ServeError::Input(_))
        ));
        let stats = server.shutdown();
        assert_eq!(stats.completed(), 0);
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let server = Server::start(net, small_cfg());
        let handles: Vec<_> = (0..8)
            .map(|i| server.submit(synth::ifmap(&shape, 1, i)).unwrap())
            .collect();
        let stats = server.shutdown(); // must not drop queued work
        assert_eq!(stats.completed(), 8);
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
    }

    #[test]
    fn prewarm_compiles_every_batch_size_and_survives_restart() {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let cfg = small_cfg();
        let compiler = PlanCompiler::new(cfg.arrays, cfg.hw);
        let cache = Arc::clone(compiler.cache());

        let server = Server::start_with_compiler(net.clone(), cfg.clone(), compiler);
        let plans = server.prewarm().unwrap();
        assert_eq!(plans.len(), 4, "one compiled plan per batch size 1..=4");
        assert!(plans.iter().all(|p| p.analytic_delay() > 0.0));
        let warmed = server.cache_stats();
        // 3 weighted stages x 4 batch sizes, all distinct problems.
        assert_eq!(warmed.misses, 12);
        // A warmed server never searches at request time.
        let response = server.submit(synth::ifmap(&shape, 1, 5)).unwrap();
        response.wait().unwrap();
        assert_eq!(server.cache_stats().misses, warmed.misses);
        server.shutdown();

        // Restart sharing the same cache: prewarm is now free.
        let compiler = PlanCompiler::new(cfg.arrays, cfg.hw).with_cache(cache);
        let restarted = Server::start_with_compiler(net, cfg, compiler);
        let replans = restarted.prewarm().unwrap();
        assert!(replans.iter().all(|p| p.searched == 0), "all hits");
        assert_eq!(restarted.cache_stats().misses, warmed.misses);
        restarted.shutdown();
    }

    #[test]
    fn unbatched_policy_means_batch_size_one() {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let mut cfg = small_cfg();
        cfg.policy = BatchPolicy::unbatched();
        cfg.workers = 1;
        let server = Server::start(net, cfg);
        let handles: Vec<_> = (0..3)
            .map(|i| server.submit(synth::ifmap(&shape, 1, i)).unwrap())
            .collect();
        for handle in handles {
            assert_eq!(handle.wait().unwrap().batch_size, 1);
        }
        let stats = server.shutdown();
        assert_eq!(stats.max_batch(), 1);
        // With unbatched policy every request is size 1 and the workers
        // share one network plan per batch size: the layer cache is
        // consulted only by the first compile (3 weighted stages), and
        // no number of further requests adds lookups of either kind.
        assert_eq!(stats.cache.misses, 3);
        assert_eq!(stats.cache.hits, 0);
    }

    #[test]
    fn injected_worker_panic_restarts_worker_and_types_the_loss() {
        let net = tiny_net();
        let golden = net.clone();
        let shape = net.stages()[0].shape;
        let mut cfg = small_cfg();
        cfg.workers = 1;
        cfg.policy = BatchPolicy::unbatched();
        // The slot's first batch pickup panics; later pickups are clean.
        cfg.faults =
            Some(FaultPlan::new(11).spec(FaultSpec::once(FaultKind::WorkerPanic, 0).target(0)));
        let server = Server::start(net, cfg);
        let lost = server.submit(synth::ifmap(&shape, 1, 1)).unwrap().wait();
        assert!(matches!(lost, Err(ServeError::WorkerLost)), "{lost:?}");
        // The supervisor restarted the slot: follow-ups complete
        // bit-exactly on the same server.
        let input = synth::ifmap(&shape, 1, 2);
        let response = server.submit(input.clone()).unwrap().wait().unwrap();
        assert_eq!(response.output, golden.forward(1, &input));
        let snap = server.snapshot();
        assert_eq!(snap.worker_restarts, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.live_workers, 1, "restart keeps the pool at size");
        assert_eq!(snap.faults_injected, 1);
        server.shutdown();
    }

    #[test]
    fn transient_corruption_retries_to_bit_exact_output() {
        let net = tiny_net();
        let golden = net.clone();
        let shape = net.stages()[0].shape;
        let mut cfg = small_cfg();
        cfg.workers = 1;
        cfg.policy = BatchPolicy::unbatched();
        cfg.abft = true;
        // One transient psum flip on global array 0's first execution:
        // ABFT detects it, the batch retries, the clean pass is exact.
        cfg.faults =
            Some(FaultPlan::new(5).spec(FaultSpec::once(FaultKind::PsumBitFlip, 0).target(0)));
        let server = Server::start(net, cfg);
        let input = synth::ifmap(&shape, 1, 7);
        let response = server.submit(input.clone()).unwrap().wait().unwrap();
        assert_eq!(
            response.output,
            golden.forward(1, &input),
            "retried output must be bit-exact"
        );
        let snap = server.snapshot();
        assert_eq!(snap.retries, 1);
        assert_eq!((snap.faults_injected, snap.faults_detected), (1, 1));
        assert_eq!((snap.failed, snap.worker_restarts), (0, 0));
        assert_eq!(snap.quarantined_arrays, 0, "one strike, then a clean run");
        assert_eq!(snap.completed, 1);
        server.shutdown();
    }

    fn sched_cfg() -> ServeConfig {
        ServeConfig {
            sched: Some(SchedConfig::new()),
            ..small_cfg()
        }
    }

    #[test]
    fn sched_server_serves_bit_exactly_via_default_tenant() {
        let net = tiny_net();
        let golden_net = net.clone();
        let shape = net.stages()[0].shape;
        let server = Server::start(net, sched_cfg());
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let input = synth::ifmap(&shape, 1, 100 + i);
                (i, server.submit(input).unwrap())
            })
            .collect();
        for (i, handle) in handles {
            let input = synth::ifmap(&shape, 1, 100 + i);
            let golden = golden_net.forward(1, &input);
            assert_eq!(
                handle.wait().unwrap().output,
                golden,
                "request {i} diverged"
            );
        }
        let snap = server.snapshot();
        assert_eq!(snap.completed, 6);
        assert_eq!(snap.queue_depth, 0, "ready queue drained");
        // Plain submits land on the always-present default tenant.
        assert_eq!(snap.tenants.len(), 1);
        let t = &snap.tenants[0];
        assert_eq!(t.name, "default");
        assert_eq!((t.submitted, t.admitted, t.completed), (6, 6, 6));
        assert_eq!((t.rejected, t.shed, t.expired), (0, 0, 0));
        assert_eq!(t.failed, 0);
        let stats = server.shutdown();
        assert_eq!(stats.completed(), 6);
    }

    #[test]
    fn sched_server_routes_tenants_and_calibrates() {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let cfg = ServeConfig {
            sched: Some(
                SchedConfig::new()
                    .tenant(TenantSpec::new("interactive").weight(3.0))
                    .tenant(TenantSpec::new("batch").priority(Priority::Low)),
            ),
            ..small_cfg()
        };
        let server = Server::start(net, cfg);
        server.prewarm().unwrap();
        let interactive = TenantId(1);
        let batch = TenantId(2);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let opts = SubmitOptions::tenant(if i % 2 == 0 { interactive } else { batch });
                server
                    .submit_with(synth::ifmap(&shape, 1, i as u64), opts)
                    .unwrap()
            })
            .collect();
        for handle in handles {
            handle.wait().unwrap();
        }
        let tenants = server.tenants();
        assert_eq!(tenants.len(), 3);
        assert_eq!(tenants[interactive.index()].completed, 2);
        assert_eq!(tenants[batch.index()].completed, 2);
        // Workers fed the estimator, so completion estimates are live.
        let Front::Sched(shared) = &server.front else {
            panic!("sched config must build the sched front")
        };
        assert!(shared.admission.estimator().samples() > 0);
        assert!(shared.admission.estimator().ns_per_cycle().unwrap() > 0.0);
        // An unknown tenant is rejected with a typed error.
        let err = server
            .submit_with(
                synth::ifmap(&shape, 1, 9),
                SubmitOptions::tenant(TenantId(77)),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Admission(AdmissionError::UnknownTenant(77))
        ));
        // Registering it live makes the same id usable.
        let late = server.register_tenant(TenantSpec::new("late")).unwrap();
        assert_eq!(late, TenantId(3));
        server
            .submit_with(synth::ifmap(&shape, 1, 9), SubmitOptions::tenant(late))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(server.tenants()[late.index()].completed, 1);
        server.shutdown();
    }

    #[test]
    fn sched_server_rejects_passed_deadlines_and_expires_queued_work() {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let server = Server::start(net, sched_cfg());
        // A zero deadline has always already passed at admission.
        let err = server
            .submit_with(
                synth::ifmap(&shape, 1, 1),
                SubmitOptions::default().deadline(Duration::ZERO),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Admission(AdmissionError::DeadlinePassed)
        ));
        let snap = server.snapshot();
        assert_eq!(snap.tenants[0].rejected, 1);
        assert_eq!(snap.completed, 0);
        // A generous deadline admits and completes.
        server
            .submit_with(
                synth::ifmap(&shape, 1, 2),
                SubmitOptions::default().deadline(Duration::from_secs(60)),
            )
            .unwrap()
            .wait()
            .unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.completed(), 1);
    }

    #[test]
    fn sched_shutdown_drains_in_flight_requests() {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let server = Server::start(net, sched_cfg());
        let handles: Vec<_> = (0..8)
            .map(|i| server.submit(synth::ifmap(&shape, 1, i)).unwrap())
            .collect();
        let stats = server.shutdown(); // must not drop queued work
        assert_eq!(stats.completed(), 8);
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
    }
}
