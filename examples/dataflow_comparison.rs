//! Reproduces the dataflow comparison: Fig. 11 (DRAM accesses/op),
//! Fig. 12 (energy/op by level and data type) and Fig. 13 (EDP) on the
//! CONV layers, plus Fig. 14 on the FC layers.
//!
//! Run with: `cargo run --release --example dataflow_comparison [pe_count]`
//! (default 256; pass 512 or 1024 for the other subplots).

use eyeriss::analysis::experiments::{fig11, fig12, fig13, fig14};

fn main() {
    let num_pes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);

    println!("{}", fig11::render(&fig11::run_at(num_pes)));
    let energy = fig12::run_at(num_pes);
    println!("{}", fig12::render_by_level(&energy));
    println!("{}", fig12::render_by_type(&energy));
    println!("{}", fig13::render(&fig13::run_at(num_pes)));

    println!("{}", fig14::render(&fig14::run()));
}
