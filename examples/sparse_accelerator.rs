//! Demonstrates the chip's sparsity features (Section V-E): zero-gating
//! of the MAC datapath and run-length compression of DRAM traffic, swept
//! over activation sparsity levels.
//!
//! ReLU layers make real activation maps highly sparse, so these features
//! "bring additional energy savings on top of the efficient dataflow".
//!
//! Run with: `cargo run --release --example sparse_accelerator`

use eyeriss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = LayerShape::conv(16, 8, 19, 3, 1)?;
    let weights = synth::filters(&shape, 7);
    let bias = synth::biases(&shape, 8);
    let em = TableIv;

    println!(
        "CONV layer {}x{} filters, sweeping ifmap sparsity:",
        shape.r, shape.r
    );
    println!(
        "{:>9}  {:>10}  {:>12}  {:>12}  {:>12}",
        "sparsity", "MACs gated", "RLC ratio", "energy/MAC", "vs dense"
    );
    let mut dense_energy = 0.0f64;
    for (i, sparsity) in [0.0f64, 0.3, 0.5, 0.7, 0.9].iter().enumerate() {
        let input = synth::sparse_ifmap(&shape, 2, 99, *sparsity);
        let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip())
            .zero_gating(true)
            .rlc(true);
        let run = chip.run_conv(&shape, 2, &input, &weights, &bias)?;

        // Verify against the golden model regardless of sparsity.
        let golden = reference::conv_accumulate(&shape, 2, &input, &weights, &bias);
        assert_eq!(run.psums, golden);

        let energy = run.stats.energy(&em) / shape.macs(2) as f64;
        if i == 0 {
            dense_energy = energy;
        }
        println!(
            "{:>8.0}%  {:>9.1}%  {:>12.2}  {:>12.3}  {:>11.1}%",
            sparsity * 100.0,
            100.0 * run.stats.gating_fraction(),
            run.stats.compression_ratio(),
            energy,
            100.0 * energy / dense_energy
        );
    }
    println!("\nAll runs bit-exact against the golden reference.");
    Ok(())
}
