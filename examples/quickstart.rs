//! Quickstart: map one AlexNet layer with every dataflow, then simulate
//! it through the `Engine` façade and verify bit-exactness.
//!
//! Run with: `cargo run --release --example quickstart`

use eyeriss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Analytical comparison on AlexNet CONV3 -------------------------
    // Every mapping space implements the `Dataflow` trait; the registry
    // holds the paper's six (plus anything you register).
    let conv3 = LayerProblem::new(LayerShape::conv(384, 256, 15, 3, 1)?, 16);
    // TableIv is the canonical CostModel — swap in any registered model
    // (see `CostModelRegistry`) to price the same comparison differently.
    let em = TableIv;
    let reg = DataflowRegistry::builtin();
    println!("AlexNet CONV3 on a 256-PE spatial architecture, batch 16:");
    println!(
        "{:>4}  {:>12}  {:>10}  {:>10}",
        "flow", "energy/MAC", "DRAM/op", "active PEs"
    );
    for df in reg.iter() {
        let hw = df.comparison_hardware(256);
        match optimize(df.as_ref(), &conv3, &hw, &em, Objective::Energy) {
            Some(best) => {
                let macs = conv3.macs() as f64;
                println!(
                    "{:>4}  {:>12.3}  {:>10.5}  {:>10}",
                    df.id(),
                    em.energy_of(&best.profile) / macs,
                    best.profile.dram_accesses() / macs,
                    best.active_pes
                );
            }
            None => println!("{:>4}  cannot operate", df.id()),
        }
    }

    // ---- 2. Functional simulation through the Engine façade ----------------
    // A shape-preserving shrink of CONV3 (same 3x3 geometry, fewer
    // filters/channels) keeps the demo fast.
    let engine = Engine::builder()
        .hardware(AcceleratorConfig::eyeriss_chip())
        .build()?;
    let small = LayerProblem::new(LayerShape::conv(16, 8, 15, 3, 1)?, 2);
    let input = synth::ifmap(&small.shape, 2, 42);
    let weights = synth::filters(&small.shape, 43);
    let bias = synth::biases(&small.shape, 44);

    let run = engine.simulate(&small, &input, &weights, &bias)?;
    let golden = reference::conv_accumulate(&small.shape, 2, &input, &weights, &bias);
    assert_eq!(run.psums, golden);

    println!(
        "\nSimulated {} MACs on the 168-PE chip — bit-exact against the golden model.",
        run.stats.macs
    );
    println!(
        "mapping: n={} p={} q={} e={} r={} t={}",
        run.mapping.n, run.mapping.p, run.mapping.q, run.mapping.e, run.mapping.r, run.mapping.t
    );
    println!(
        "cycles: {}   utilization: {:.1}%",
        run.stats.cycles,
        100.0 * run.stats.utilization(168)
    );
    println!(
        "measured RF : (buffer+array) energy ratio = {:.2} (chip measured ~4:1 for CONV)",
        run.stats.rf_to_onchip_rest_ratio(&em)
    );
    Ok(())
}
