//! Quickstart: map one AlexNet layer with every dataflow, then simulate
//! it on the fabricated chip's configuration and verify bit-exactness.
//!
//! Run with: `cargo run --release --example quickstart`

use eyeriss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Analytical comparison on AlexNet CONV3 -------------------------
    let conv3 = LayerShape::conv(384, 256, 15, 3, 1)?;
    let em = EnergyModel::table_iv();
    println!("AlexNet CONV3 on a 256-PE spatial architecture, batch 16:");
    println!(
        "{:>4}  {:>12}  {:>10}  {:>10}",
        "flow", "energy/MAC", "DRAM/op", "active PEs"
    );
    for kind in DataflowKind::ALL {
        let hw = comparison_hardware(kind, 256);
        match best_mapping(kind, &conv3, 16, &hw, &em) {
            Some(best) => {
                let macs = conv3.macs(16) as f64;
                println!(
                    "{:>4}  {:>12.3}  {:>10.5}  {:>10}",
                    kind.label(),
                    best.profile.total_energy(&em) / macs,
                    best.profile.dram_accesses() / macs,
                    best.active_pes
                );
            }
            None => println!("{:>4}  cannot operate", kind.label()),
        }
    }

    // ---- 2. Functional simulation on the Eyeriss chip ----------------------
    // A shape-preserving shrink of CONV3 (same 3x3 geometry, fewer
    // filters/channels) keeps the demo fast.
    let small = LayerShape::conv(16, 8, 15, 3, 1)?;
    let input = synth::ifmap(&small, 2, 42);
    let weights = synth::filters(&small, 43);
    let bias = synth::biases(&small, 44);

    let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
    let run = chip.run_conv(&small, 2, &input, &weights, &bias)?;
    let golden = reference::conv_accumulate(&small, 2, &input, &weights, &bias);
    assert_eq!(run.psums, golden);

    println!(
        "\nSimulated {} MACs on the 168-PE chip — bit-exact against the golden model.",
        run.stats.macs
    );
    println!(
        "mapping: n={} p={} q={} e={} r={} t={}",
        run.mapping.n, run.mapping.p, run.mapping.q, run.mapping.e, run.mapping.r, run.mapping.t
    );
    println!(
        "cycles: {}   utilization: {:.1}%",
        run.stats.cycles,
        100.0 * run.stats.utilization(168)
    );
    println!(
        "measured RF : (buffer+array) energy ratio = {:.2} (chip measured ~4:1 for CONV)",
        run.stats.rf_to_onchip_rest_ratio(&em)
    );
    Ok(())
}
