//! Extension: scale one Eyeriss array to a multi-array cluster.
//!
//! Partitions AlexNet (and optionally VGG-16) CONV layers across
//! 1/2/4/8 arrays under batch / ofmap-channel / fmap-tile / searched
//! partitioning, then executes a CONV1-geometry slice on the functional
//! cluster executor — verifying the partitioned ofmap is bit-exact
//! against the single-array simulator — and prints per-array
//! energy/cycle aggregates.
//!
//! Run with: `cargo run --release --example cluster_scaling [--vgg]`

use eyeriss::analysis::experiments::cluster_scaling;
use eyeriss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Analytic scaling sweep -----------------------------------------
    println!(
        "{}",
        cluster_scaling::render(&cluster_scaling::run_alexnet())
    );
    if std::env::args().any(|a| a == "--vgg") {
        println!("{}", cluster_scaling::render(&cluster_scaling::run_vgg()));
    }

    // ---- 2. Functional execution: bit-exact across 4 arrays ----------------
    let conv1 = LayerShape::conv(8, 3, 227, 11, 4)?; // CONV1 geometry slice
    let n = 4;
    let problem = LayerProblem::new(conv1, n);
    let input = synth::ifmap(&conv1, n, 42);
    let weights = synth::filters(&conv1, 43);
    let bias = synth::biases(&conv1, 44);
    let golden = reference::conv_accumulate(&conv1, n, &input, &weights, &bias);

    for partition in [
        Partition::Batch,
        Partition::OfmapChannel,
        Partition::FmapTile,
    ] {
        let cluster =
            Cluster::new(4, AcceleratorConfig::eyeriss_chip()).shared_dram(SharedDram::scaled(4));
        let run = cluster.execute_partition(partition, &problem, &input, &weights, &bias)?;
        assert_eq!(run.psums, golden, "{partition} diverged");
        println!(
            "{partition:>9} over 4 arrays: bit-exact; cluster cycles {:>9} \
             (imbalance {:.2}, contention {})",
            run.stats.cluster_cycles(),
            run.stats.imbalance(),
            run.stats.contention_stalls,
        );
    }

    // ---- 3. Measured per-array aggregates across cluster sizes -------------
    println!();
    println!(
        "{}",
        cluster_scaling::render_sim(&cluster_scaling::simulate())
    );
    Ok(())
}
