//! Reproduces Fig. 15: trading processing area against storage area for
//! the RS dataflow under a fixed total chip area.
//!
//! Run with: `cargo run --release --example design_space`

use eyeriss::analysis::experiments::fig15;

fn main() {
    let points = fig15::run();
    println!("{}", fig15::render(&points));

    let first = points.first().expect("sweep is non-empty");
    let last = points.last().expect("sweep is non-empty");
    let speedup = first.delay_per_op / last.delay_per_op;
    let energy_ratio = last.energy_per_op / first.energy_per_op;
    println!(
        "From {} to {} PEs: throughput x{:.1}, energy/op x{:.2} \
         (paper: >10x throughput for ~13% energy).",
        first.num_pes, last.num_pes, speedup, energy_ratio
    );
}
