//! Reproduces Fig. 7b (storage allocation) and Fig. 10 (RS energy
//! breakdown across the hierarchy for every AlexNet layer).
//!
//! Run with: `cargo run --release --example alexnet_energy`

use eyeriss::analysis::experiments::{fig10, fig7};

fn main() {
    let allocations = fig7::run(256);
    println!("{}", fig7::render(&allocations));

    let breakdown = fig10::run();
    println!("{}", fig10::render(&breakdown));

    // The two qualitative observations of Section VII-A.
    let conv: f64 = breakdown.layers[..5].iter().map(|l| l.total()).sum();
    let all: f64 = breakdown.layers.iter().map(|l| l.total()).sum();
    println!(
        "CONV layers consume {:.0}% of total AlexNet energy (paper: ~80%).",
        100.0 * conv / all
    );
    let rf: f64 = breakdown.layers[..5].iter().map(|l| l.by_level[3]).sum();
    let rest: f64 = breakdown.layers[..5]
        .iter()
        .map(|l| l.by_level[1] + l.by_level[2])
        .sum();
    println!(
        "CONV RF : on-chip-rest energy ratio = {:.1} (chip measurement: ~4:1).",
        rf / rest
    );
}
