//! MobileNet on the flexible chip: `flex-rs` registered as a real
//! seventh dataflow, driving compile → persist → reload → serve with
//! zero re-searches, then the headline flex-vs-dense comparison.
//!
//! Run with: `cargo run --release --example mobilenet` for the full
//! MobileNet v1 table, or `-- --smoke` for the CI fast path (the tiny
//! network through the persisted-plan round trip only).

use eyeriss::analysis::experiments::flex_dataflow;
use eyeriss::dataflow::flex::FlexRsModel;
use eyeriss::nn::mobilenet;
use eyeriss::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // ---- 1. The persisted-plan path under flex-rs --------------------
    // A depthwise-separable tiny MobileNet compiled by a warm engine,
    // persisted, reloaded by a cold engine, and served bit-exactly —
    // the same walkthrough as `tests/engine_facade.rs`, but with the
    // paper-grade seventh dataflow instead of a toy.
    let net = mobilenet::mobilenet_tiny(19);
    let golden = net.clone();
    let shape = net.stages()[0].shape;

    let warm = Engine::builder()
        .hardware(AcceleratorConfig::eyeriss_chip())
        .arrays(1)
        .dataflow_instance(Arc::new(FlexRsModel))
        .build()?;
    warm.compile(&net, 1)?;
    let dir = std::env::temp_dir().join("eyeriss-mobilenet-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("mobilenet.plans");
    let saved = warm.save_plans(&path)?;

    let cold = Engine::builder()
        .hardware(AcceleratorConfig::eyeriss_chip())
        .arrays(1)
        .dataflow_instance(Arc::new(FlexRsModel))
        .build()?;
    let loaded = cold.load_plans(&path)?;
    let server = cold.serve(net)?;
    let input = synth::ifmap(&shape, 1, 5);
    let response = server.submit(input.clone())?.wait()?;
    assert_eq!(
        response.output,
        golden.forward(1, &input),
        "served output diverged from the golden model"
    );
    server.shutdown();
    assert_eq!(
        cold.cache_stats().misses,
        0,
        "cold serving must run zero mapping searches"
    );
    std::fs::remove_file(&path).ok();
    println!(
        "flex-rs persisted-plan path: {saved} plans saved, {loaded} reloaded, \
         served bit-exact with zero re-searches"
    );

    if smoke {
        println!("smoke mode: skipping the MobileNet v1 comparison table");
        return Ok(());
    }

    // ---- 2. The headline experiment ----------------------------------
    // Full MobileNet v1 at batch 1: per-layer PE utilization and energy
    // under flex-rs against the best of the six dense dataflows.
    println!("\n{}", flex_dataflow::render(&flex_dataflow::run()));
    Ok(())
}
