//! Extension: the dataflow comparison on VGG-16, the deeper network the
//! paper cites alongside AlexNet (Section III-B). Deeper, all-3x3 CONV
//! stacks push even more of the energy into the CONV layers, where the
//! row-stationary advantage lives.
//!
//! Run with: `cargo run --release --example vgg_analysis`

use eyeriss::nn::vgg;
use eyeriss::prelude::*;

fn main() {
    let layers = vgg::conv_layers();
    println!("VGG-16 CONV layers on a 256-PE spatial architecture, batch 16:");
    println!("{:>4}  {:>12}  {:>10}", "flow", "energy/MAC", "DRAM/op");
    let mut rs_energy = 0.0f64;
    for kind in DataflowKind::ALL {
        match run_layers(kind, &layers, 16, 256) {
            Some(run) => {
                if kind == DataflowKind::RowStationary {
                    rs_energy = run.energy_per_op();
                }
                println!(
                    "{:>4}  {:>12.3}  {:>10.5}{}",
                    kind.label(),
                    run.energy_per_op(),
                    run.dram_accesses_per_op(),
                    if kind == DataflowKind::RowStationary {
                        String::new()
                    } else {
                        format!("   ({:.2}x RS)", run.energy_per_op() / rs_energy)
                    }
                );
            }
            None => println!("{:>4}  cannot operate", kind.label()),
        }
    }

    // Per-layer RS picture: the deeper stages (tiny planes, many channels)
    // stress the mapper differently from AlexNet.
    let run = run_layers(DataflowKind::RowStationary, &layers, 16, 256).unwrap();
    println!("\nRS per-layer energy/MAC across the 13 CONV layers:");
    for l in &run.layers {
        println!(
            "  {:<8} active={:>3}  e/op={:.3}",
            l.name,
            l.active_pes,
            l.energy(run.cost.as_ref()) / l.macs
        );
    }
}
