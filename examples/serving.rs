//! Extension: serve inference traffic on a multi-array Eyeriss cluster.
//!
//! Demonstrates the `eyeriss-serve` runtime end to end:
//!
//! 1. **Plan compilation** — AlexNet and VGG-16 CONV layers compiled
//!    through the content-keyed plan cache (VGG's repeated 3×3 shapes
//!    are searched once and then hit the cache).
//! 2. **An open-loop client** — paced request arrivals against a live
//!    server, swept across offered loads, reporting achieved throughput
//!    and p50/p99 latency at each point.
//! 3. **One traced request** — a single inference with its
//!    queue/compile/execute latency breakdown, verified bit-exact
//!    against the pure-software reference — plus the server's live
//!    telemetry (`Server::snapshot()` and the wire-schema export).
//! 4. **Persisted plans** — compile once, serve cold with zero searches.
//! 5. **A non-default cost model** — a registered `lp-28nm` model prices
//!    search/planning, persists by fingerprint, serves cold, and never
//!    cross-hits Table IV-priced cache entries.
//!
//! Run with: `cargo run --release --example serving [--smoke]`
//! (`--smoke` skips the heavier sweeps for CI). `--tenants` instead
//! runs the multi-tenant scheduling demo: admission control under 2×
//! overload versus the legacy FIFO, and weighted fair sharing between
//! two tenants flooding one worker. `--chaos` runs the seeded
//! fault-injection experiment: transient psum flips retried to
//! bit-exact outputs under ABFT, a persistent array crash quarantined,
//! and degraded-pool throughput measured against the healthy baseline.

use eyeriss::analysis::experiments::chaos;
use eyeriss::analysis::experiments::serving;
use eyeriss::prelude::*;
use eyeriss::serve::SloSpec;
use std::time::Duration;

/// The `--tenants` mode: two weighted tenants under overload. Prints
/// the admission-vs-FIFO overload table and the DRR fairness table,
/// asserting the acceptance criteria in release mode (CI uploads the
/// output as an artifact).
fn tenants_demo() -> Result<(), Box<dyn std::error::Error>> {
    let overload = serving::overload_comparison(32);
    println!("{}", serving::render_overload(&overload));
    assert!(
        overload.sched.rejected + overload.sched.expired > 0,
        "2x overload must shed work under admission control"
    );
    assert!(
        overload.admission_bounds_p99(),
        "admission-on p99 {:?} exceeded 2x the {:?} deadline",
        overload.sched.p99,
        overload.deadline
    );
    assert!(
        overload.fifo_p99_grows(1.3),
        "FIFO p99 should grow unboundedly with the backlog"
    );

    let fairness = serving::fairness_drr(60, 60);
    println!("{}", serving::render_fairness(&fairness));
    assert!(
        fairness.within(0.15),
        "DRR shares {:?} strayed from the {:.0}:1 weight ratio",
        fairness.completed,
        fairness.target_ratio
    );
    Ok(())
}

/// The `--chaos` mode: the seeded fault-injection run. Prints the
/// chaos report table and asserts the fault-tolerance acceptance
/// criteria (CI uploads the output as an artifact).
fn chaos_demo() -> Result<(), Box<dyn std::error::Error>> {
    let report = chaos::run();
    report.verify();
    println!("{}", chaos::render(&report));
    println!(
        "chaos verdict: {} requests bit-exact through {} injections \
         ({} ABFT-detected), 1 array quarantined, degraded pool at {:.0}% capacity",
        report.completed,
        report.faults_injected,
        report.faults_detected,
        report.throughput_ratio() * 100.0,
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if std::env::args().any(|a| a == "--tenants") {
        return tenants_demo();
    }
    if std::env::args().any(|a| a == "--chaos") {
        return chaos_demo();
    }

    // ---- 1. Plan compilation through the content-keyed cache ---------------
    println!("{}", serving::render_compile(&serving::compile_vgg()));
    if !smoke {
        println!("{}", serving::render_compile(&serving::compile_alexnet()));
    }

    // ---- 2. Open-loop offered-load sweep ------------------------------------
    let sweep = if smoke {
        serving::sweep_network(
            &serving::synthetic_net(),
            "synthetic (smoke)",
            &ServeConfig::new(),
            &[0.5, 2.0],
            12,
        )
    } else {
        serving::sweep_synthetic()
    };
    println!("{}", serving::render_sweep(&sweep));
    for point in &sweep.points {
        assert!(point.completed > 0 && point.p99 >= point.p50);
    }
    if !smoke {
        // Wall-clock monotonicity needs a quiet machine; the CI smoke run
        // only checks the structural properties above.
        assert!(
            sweep.throughput_is_monotone(0.25),
            "throughput curve collapsed under load"
        );
    }

    // ---- 3. One traced request, bit-exact -----------------------------------
    let net = serving::synthetic_net();
    let shape = net.stages()[0].shape;
    let golden_net = net.clone();
    let mut cfg = ServeConfig::new();
    cfg.policy = BatchPolicy {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
    };
    // A deliberately unreachable p99 bound so the SLO monitor breaches
    // and the flight recorder dumps — demonstrating the anomaly path.
    cfg.slos = vec![SloSpec::p99_latency("demo-p99", Duration::from_nanos(1)).min_events(1)];
    let server = Server::start(net, cfg);
    let input = synth::ifmap(&shape, 1, 99);
    let handle = server.submit(input.clone())?;
    let trace_id = handle.trace_id();
    let response = handle.wait()?;
    assert_eq!(
        response.output,
        golden_net.forward(1, &input),
        "served output must be bit-exact"
    );
    println!(
        "request {} (batch of {}, trace {:#x}): queue {:.2} ms, compile {:.2} ms, execute {:.2} ms",
        response.id,
        response.batch_size,
        trace_id,
        response.latency.queue.as_secs_f64() * 1e3,
        response.latency.compile.as_secs_f64() * 1e3,
        response.latency.execute.as_secs_f64() * 1e3,
    );
    // Per-request energy/delay attribution: the executed plan's cost
    // report (bit-exact against the plan), this request's even energy
    // share, and the simulated-vs-predicted cycle residual.
    let att = response
        .attribution
        .as_ref()
        .expect("default servers trace every request");
    println!(
        "attribution: batch energy {:.3e} ({:.3e}/request over {}), \
         analytic delay {:.3e} cycles, residual {:+.0} cycles",
        att.report.total_energy,
        att.per_request().total_energy,
        att.batch_size,
        att.analytic_delay,
        att.residual_cycles(),
    );
    // The breached SLO latched exactly one flight dump covering the
    // anomaly window; its wire form and a trace-filtered Chrome view
    // are what CI uploads as a post-mortem artifact.
    let dumps = server.slo_monitor().dumps();
    assert_eq!(dumps.len(), 1, "one breach, one dump");
    println!(
        "SLO '{}' breached (burn {:.0}x short / {:.0}x long): flight dump holds {} record(s)",
        dumps[0].slo,
        dumps[0].short_burn,
        dumps[0].long_burn,
        dumps[0].records.len(),
    );
    // ---- 3b. Live telemetry, no shutdown required ---------------------------
    // Default servers run a private always-on telemetry instance, so
    // `Server::snapshot()` is live at any point in the server's life;
    // the full exportable snapshot (metrics + spans) comes from
    // `Server::telemetry()`.
    let live = server.snapshot();
    println!(
        "live snapshot: {} completed, queue depth {}, p50 {:.2} ms, p99 {:.2} ms",
        live.completed,
        live.queue_depth,
        live.p50().as_secs_f64() * 1e3,
        live.p99().as_secs_f64() * 1e3,
    );
    println!(
        "telemetry snapshot (wire schema): {}",
        server.telemetry().snapshot().to_wire().render()
    );
    let stats = server.shutdown();
    println!(
        "server lifetime: {} requests, plan cache {} searches / {} hits ({:.0}% hit rate)",
        stats.completed(),
        stats.cache.misses,
        stats.cache.hits,
        stats.cache.hit_rate() * 100.0,
    );

    // ---- 4. Persisted plan cache: compile once, serve cold, search never ----
    // An `Engine` prewarms and persists its plan cache; a *cold* engine
    // (fresh process after a restart) reloads it and serves bit-exactly
    // with zero mapping searches. CI runs this path under `--smoke`.
    let dir = std::env::temp_dir().join("eyeriss-serving-example");
    std::fs::create_dir_all(&dir)?;
    let cache_path = dir.join("serving.plans");

    let net = serving::synthetic_net();
    let golden_net = net.clone();
    let shape = net.stages()[0].shape;
    let warm = Engine::builder()
        .hardware(ServeConfig::new().hw)
        .arrays(2)
        .build()?;
    warm.compile(&net, 1)?;
    let saved = warm.save_plans(&cache_path)?;

    let cold = Engine::builder()
        .hardware(ServeConfig::new().hw)
        .arrays(2)
        .build()?;
    let loaded = cold.load_plans(&cache_path)?;
    assert_eq!(loaded, saved);
    let server = cold.serve_with(
        golden_net.clone(),
        ServeOptions {
            workers: 1,
            policy: BatchPolicy::unbatched(),
            queue_capacity: 8,
            slos: Vec::new(),
            sched: None,
        },
    )?;
    let input = synth::ifmap(&shape, 1, 7);
    let response = server.submit(input.clone())?.wait()?;
    assert_eq!(
        response.output,
        golden_net.forward(1, &input),
        "cold-served output must be bit-exact"
    );
    server.shutdown();
    assert_eq!(
        cold.cache_stats().misses,
        0,
        "a cold engine serving from persisted plans must never search"
    );
    println!(
        "persisted plan cache: {saved} plans saved, {loaded} reloaded cold, \
         1 request served bit-exact with 0 searches"
    );
    std::fs::remove_file(&cache_path).ok();

    // ---- 5. Non-default cost model end to end (CI runs this under --smoke) --
    // A registered custom cost model prices the search, travels in the
    // persisted plans as a fingerprint, and serves cold — while plans
    // with distinct cost fingerprints never cross-hit the cache.
    let lp_path = dir.join("serving-lp28.plans");
    let lp28: std::sync::Arc<dyn CostModel> = std::sync::Arc::new(
        StaticCostModel::new("lp-28nm", EnergyModel::new(120.0, 5.0, 2.0, 1.0, 1.0)?)
            .with_bandwidth(Level::Dram, 2.0)?,
    );
    let net = serving::synthetic_net();
    let golden_net = net.clone();
    let shape = net.stages()[0].shape;
    let warm = Engine::builder()
        .hardware(ServeConfig::new().hw)
        .arrays(2)
        .cost_model(std::sync::Arc::clone(&lp28))
        .build()?;
    warm.compile(&net, 1)?;
    let saved = warm.save_plans(&lp_path)?;

    let cold = Engine::builder()
        .hardware(ServeConfig::new().hw)
        .arrays(2)
        .register_cost_model(std::sync::Arc::clone(&lp28))
        .cost_model_id(CostModelId::new("lp-28nm"))
        .build()?;
    assert_eq!(cold.load_plans(&lp_path)?, saved);
    let server = cold.serve_with(
        golden_net.clone(),
        ServeOptions {
            workers: 1,
            policy: BatchPolicy::unbatched(),
            queue_capacity: 8,
            slos: Vec::new(),
            sched: None,
        },
    )?;
    let input = synth::ifmap(&shape, 1, 13);
    let response = server.submit(input.clone())?.wait()?;
    assert_eq!(
        response.output,
        golden_net.forward(1, &input),
        "custom-cost-model serving must stay bit-exact"
    );
    server.shutdown();
    assert_eq!(
        cold.cache_stats().misses,
        0,
        "cold serving under the registered cost model must not search"
    );

    // Distinct fingerprints never cross-hit: a Table IV engine loading
    // the lp-28nm plans (with the model registered so they decode) must
    // re-search rather than reuse foreign-priced plans.
    let table = Engine::builder()
        .hardware(ServeConfig::new().hw)
        .arrays(2)
        .register_cost_model(std::sync::Arc::clone(&lp28))
        .build()?;
    assert_eq!(table.load_plans(&lp_path)?, saved);
    table.compile(&golden_net, 1)?;
    assert_eq!(
        table.cache_stats().hits,
        0,
        "plans priced under a different cost fingerprint must not cross-hit"
    );
    assert!(table.cache_stats().misses > 0);
    println!(
        "cost-model smoke: {saved} lp-28nm plans persisted + served cold with 0 searches; \
         Table IV engine re-searched {} stages instead of cross-hitting",
        table.cache_stats().misses
    );
    std::fs::remove_file(&lp_path).ok();
    Ok(())
}
