//! Acceptance tests of `flex-rs` as a *real* seventh dataflow: the
//! Eyeriss v2 flexible row-stationary space registered through the
//! public [`DataflowRegistry`] and driven by the unmodified search,
//! cluster, wire and serve machinery — the production-grade counterpart
//! of the toy walkthrough in `tests/engine_facade.rs`.

use eyeriss::dataflow::flex::{FlexRsModel, FLEX_RS};
use eyeriss::dataflow::wire;
use eyeriss::prelude::*;
use std::sync::Arc;

#[test]
fn flex_rs_searches_plans_and_roundtrips_through_the_registry() {
    let mut reg = DataflowRegistry::builtin();
    reg.register(Arc::new(FlexRsModel)).unwrap();
    assert_eq!(reg.len(), 7);

    let flex = reg.resolve(FLEX_RS).unwrap();
    let hw = AcceleratorConfig::eyeriss_chip();
    // A MobileNet-class depthwise layer: one input channel per filter,
    // so dense RS fills at most R = 3 PE rows of the 12x14 array.
    let dw = LayerProblem::new(LayerShape::depthwise(256, 16, 3, 1).unwrap(), 2);

    // The unmodified optimizer searches the registered space.
    let best = optimize(flex.as_ref(), &dw, &hw, &TableIv, Objective::Energy)
        .expect("flex-rs is feasible on depthwise layers");
    assert_eq!(best.params.dataflow(), FLEX_RS);
    assert_eq!(best.params.kind(), None, "not one of the builtin six");

    // And the winner activates strictly more PEs than dense RS can.
    let rs = registry::builtin(DataflowKind::RowStationary);
    let rs_best = optimize(rs, &dw, &hw, &TableIv, Objective::Energy).unwrap();
    assert!(
        best.active_pes > rs_best.active_pes,
        "flex {} <= rs {}",
        best.active_pes,
        rs_best.active_pes
    );

    // The unmodified cluster planner co-optimizes (partition, mapping)
    // in the flex space; grouped layers split by batch.
    let plan = plan_layer(
        flex.as_ref(),
        &dw,
        2,
        &hw,
        &TableIv,
        &SharedDram::scaled(2),
        Objective::Energy,
    )
    .expect("flex-rs plans across the cluster");
    assert_eq!(plan.arrays, 2);
    assert!(plan
        .per_array
        .iter()
        .flat_map(|a| &a.tiles)
        .all(|t| t.mapping.params.dataflow() == FLEX_RS));

    // The searched candidate survives the wire format bit-exactly.
    let back = wire::decode_candidate(&wire::encode_candidate(&best), &reg).unwrap();
    assert_eq!(back, best);
    // Without the registration the encoded form is refused, typed.
    assert!(
        wire::decode_candidate(&wire::encode_candidate(&best), &DataflowRegistry::builtin())
            .is_err()
    );
}

#[test]
fn flex_engine_executes_depthwise_bit_exactly() {
    let engine = Engine::builder()
        .hardware(AcceleratorConfig::eyeriss_chip())
        .arrays(2)
        .dataflow_instance(Arc::new(FlexRsModel))
        .build()
        .unwrap();
    assert_eq!(engine.dataflow().id(), FLEX_RS);

    let shape = LayerShape::depthwise(8, 13, 3, 2).unwrap();
    let problem = LayerProblem::new(shape, 4);
    let best = engine.best_mapping(&problem).unwrap();
    assert_eq!(best.params.dataflow(), FLEX_RS);

    let input = synth::ifmap(&shape, 4, 1);
    let weights = synth::filters(&shape, 2);
    let bias = synth::biases(&shape, 3);
    let run = engine.run(&problem, &input, &weights, &bias).unwrap();
    assert_eq!(
        run.psums,
        reference::conv_accumulate(&shape, 4, &input, &weights, &bias)
    );
}

#[test]
fn cold_engine_serves_mobilenet_tiny_under_flex_with_zero_searches() {
    let dir = std::env::temp_dir().join("eyeriss-flex-acceptance");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("flex.plans");

    let net = mobilenet::mobilenet_tiny(23);
    let golden = net.clone();
    let shape = net.stages()[0].shape;

    // Warm engine: compile every weighted stage under flex-rs, persist.
    let warm = Engine::builder()
        .hardware(AcceleratorConfig::eyeriss_chip())
        .arrays(1)
        .dataflow_instance(Arc::new(FlexRsModel))
        .build()
        .unwrap();
    warm.compile(&net, 1).unwrap();
    let saved = warm.save_plans(&path).unwrap();
    assert_eq!(saved, 6, "six weighted stages in mobilenet-tiny");

    // Cold engine: reload and serve bit-exactly with zero re-searches.
    let cold = Engine::builder()
        .hardware(AcceleratorConfig::eyeriss_chip())
        .arrays(1)
        .dataflow_instance(Arc::new(FlexRsModel))
        .build()
        .unwrap();
    assert_eq!(cold.load_plans(&path).unwrap(), saved);
    let server = cold
        .serve_with(
            net,
            ServeOptions {
                workers: 1,
                policy: BatchPolicy::unbatched(),
                queue_capacity: 8,
                slos: Vec::new(),
                sched: None,
            },
        )
        .unwrap();
    for seed in 0..3u64 {
        let input = synth::ifmap(&shape, 1, seed);
        let response = server.submit(input.clone()).unwrap().wait().unwrap();
        assert_eq!(
            response.output,
            golden.forward(1, &input),
            "served output diverged (seed {seed})"
        );
    }
    server.shutdown();
    assert_eq!(
        cold.cache_stats().misses,
        0,
        "cold serving under flex-rs must not search"
    );

    // An engine without the registration refuses the persisted plans
    // with a typed error instead of guessing.
    let ignorant = Engine::builder()
        .hardware(AcceleratorConfig::eyeriss_chip())
        .arrays(1)
        .build()
        .unwrap();
    assert!(matches!(
        ignorant.load_plans(&path),
        Err(EngineError::Serve(_))
    ));
    std::fs::remove_file(&path).ok();
}
