//! Property and integration tests for the `serve::sched` scheduling
//! layer: EDF dispatch order under concurrent submission, DRR share
//! convergence, aging as a starvation bound, the admission controller's
//! "never accept a passed deadline" invariant, and end-to-end
//! multi-tenant behavior through a live [`Server`].

use eyeriss::nn::network::NetworkBuilder;
use eyeriss::nn::synth;
use eyeriss::prelude::*;
use eyeriss::serve::sched::{AdmissionController, AdmitRequest, Backlog, ReadyQueue};
use eyeriss::serve::{
    AdmissionError, BatchPolicy, Priority, RateLimit, RecoveryPolicy, SchedConfig, ServeConfig,
    ServeError, Server, SubmitOptions, TenantSpec,
};
use eyeriss::telemetry::Telemetry;
use proptest::prelude::*;
use std::time::Duration;

/// Sentinel for "no deadline" when the queued item *is* its deadline.
const NO_DEADLINE: u64 = u64::MAX;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// EDF within a lane survives concurrent submission: however four
    /// threads interleave their pushes, a single-tenant single-tier
    /// queue drains in non-decreasing deadline order (deadline-free
    /// entries last).
    #[test]
    fn prop_edf_orders_concurrent_submissions(
        deadlines in proptest::collection::vec(
            (0u64..1_000_000).prop_map(|v| (v != 0).then_some(v)), 8..64),
    ) {
        let queue = ReadyQueue::new(deadlines.len(), 1.0, 0);
        std::thread::scope(|scope| {
            for chunk in deadlines.chunks(deadlines.len().div_ceil(4)) {
                let queue = &queue;
                scope.spawn(move || {
                    for &deadline in chunk {
                        let item = deadline.unwrap_or(NO_DEADLINE);
                        queue
                            .push(item, 0, 1.0, 0, deadline, 0)
                            .expect("queue sized for all entries");
                    }
                });
            }
        });
        let mut drained = Vec::new();
        while let Some((item, popped)) = queue.pop(0) {
            prop_assert_eq!(popped.lane, 0);
            drained.push(item);
        }
        prop_assert_eq!(drained.len(), deadlines.len());
        for pair in drained.windows(2) {
            prop_assert!(
                pair[0] <= pair[1],
                "EDF violated: {} dispatched before {}",
                pair[0],
                pair[1]
            );
        }
    }

    /// DRR throughput shares converge to the weight ratio: two lanes
    /// backlogged throughout an integral number of rounds split the
    /// dispatches `w0 : w1` within one round of slack.
    #[test]
    fn prop_drr_shares_converge_to_weights(
        w0 in 1u32..=8, w1 in 1u32..=8, rounds in 2usize..=6,
    ) {
        let per_round = (w0 + w1) as usize;
        let pops = rounds * per_round;
        // Enough backlog that neither lane empties mid-measurement.
        let queue = ReadyQueue::new(2 * pops, 1.0, 0);
        for i in 0..pops as u64 {
            queue.push(i, 0, f64::from(w0), 0, None, 0).unwrap();
            queue.push(i, 1, f64::from(w1), 0, None, 0).unwrap();
        }
        let mut counts = [0usize; 2];
        for _ in 0..pops {
            let (_, popped) = queue.pop(0).expect("backlog covers every pop");
            counts[popped.lane] += 1;
        }
        let expect0 = rounds * w0 as usize;
        prop_assert!(
            counts[0].abs_diff(expect0) <= per_round,
            "lane 0 took {} of {} dispatches; weights {}:{} expect ~{}",
            counts[0], pops, w0, w1, expect0
        );
    }

    /// Aging prevents starvation: a lowest-tier entry buried under a
    /// high-priority flood is promoted to the front once enough time
    /// passes — and without aging, the same entry drains dead last.
    #[test]
    fn prop_aging_prevents_starvation(
        aging_ns in 1_000u64..100_000, flood in 8usize..32,
    ) {
        const STARVED: u64 = u64::MAX;
        let aged = ReadyQueue::new(flood + 1, 1.0, aging_ns);
        let frozen = ReadyQueue::new(flood + 1, 1.0, 0);
        for queue in [&aged, &frozen] {
            queue
                .push(STARVED, 0, 1.0, Priority::Low.tier(), None, 0)
                .unwrap();
            for i in 0..flood as u64 {
                queue.push(i, 1, 1.0, Priority::High.tier(), None, 0).unwrap();
            }
        }
        // Two aging intervals later the Low entry reaches tier 0 and
        // competes under DRR at equal weight: it dispatches within the
        // first few pops instead of waiting out the whole flood.
        let now = 2 * aging_ns;
        let position = |queue: &ReadyQueue<u64>| {
            let mut pos = 0usize;
            while let Some((item, _)) = queue.pop(now) {
                if item == STARVED {
                    return pos;
                }
                pos += 1;
            }
            unreachable!("starved entry was queued");
        };
        prop_assert!(
            position(&aged) < 4,
            "aged entry should dispatch near the front"
        );
        prop_assert_eq!(
            position(&frozen), flood,
            "without aging the Low entry drains last"
        );
    }

    /// The admission controller never accepts a request whose deadline
    /// already passed — calibrated or not, burning or not, regardless
    /// of backlog or tier.
    #[test]
    fn prop_admission_never_accepts_past_deadlines(
        now_ns in 0u64..u64::MAX / 2,
        late_by in 0u64..1_000_000,
        tier in 0u8..=2,
        queued in 0i64..64,
        inflight in 0i64..8,
        burning in any::<bool>(),
        calibration in (0u64..10_000).prop_map(|v| (v != 0).then_some(v)),
    ) {
        let registry =
            eyeriss::serve::sched::TenantRegistry::new(Telemetry::new_enabled());
        let tenant = registry.get(Default::default()).unwrap();
        let controller = AdmissionController::new(2, 4);
        if let Some(ns) = calibration {
            controller.estimator().observe(100.0, 100 * ns);
        }
        let verdict = controller.admit(
            &tenant,
            AdmitRequest {
                tier,
                deadline_ns: Some(now_ns.saturating_sub(late_by)),
                now_ns,
                unit_cycles: Some(1_000.0),
                backlog: Backlog { queued, inflight },
                burning,
            },
        );
        prop_assert_eq!(verdict, Err(AdmissionError::DeadlinePassed));
    }

    /// Once calibrated, a future deadline the completion estimate
    /// cannot make is rejected as infeasible, and the error carries
    /// the estimate that condemned it.
    #[test]
    fn prop_calibrated_admission_rejects_infeasible_deadlines(
        now_ns in 0u64..1 << 40,
        ns_per_cycle in 1u64..1_000,
        queued in 0i64..64,
        inflight in 0i64..8,
        slack_num in 1u64..100,
    ) {
        let registry =
            eyeriss::serve::sched::TenantRegistry::new(Telemetry::new_enabled());
        let tenant = registry.get(Default::default()).unwrap();
        let controller = AdmissionController::new(2, 4);
        controller.estimator().observe(100.0, 100 * ns_per_cycle);
        let backlog = Backlog { queued, inflight };
        let estimated = controller
            .estimate_completion_ns(now_ns, Some(1_000.0), backlog)
            .expect("calibrated");
        prop_assume!(estimated > now_ns + 1);
        // A deadline strictly between now and the estimate.
        let deadline = now_ns + 1 + (estimated - now_ns - 1) * slack_num / 100;
        prop_assume!(deadline < estimated);
        let verdict = controller.admit(
            &tenant,
            AdmitRequest {
                tier: 0,
                deadline_ns: Some(deadline),
                now_ns,
                unit_cycles: Some(1_000.0),
                backlog,
                burning: false,
            },
        );
        prop_assert_eq!(
            verdict,
            Err(AdmissionError::DeadlineInfeasible {
                estimated_ns: estimated,
                deadline_ns: deadline,
            })
        );
    }
}

fn sched_server(sched: SchedConfig) -> (Server, eyeriss::nn::LayerShape) {
    let net = NetworkBuilder::new(3, 19)
        .conv("C1", 8, 3, 2)
        .unwrap()
        .fully_connected("FC", 10)
        .unwrap()
        .build(7);
    let shape = net.stages()[0].shape;
    let cfg = ServeConfig {
        arrays: 2,
        workers: 1,
        policy: BatchPolicy {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
        },
        queue_capacity: 16,
        hw: AcceleratorConfig::eyeriss_chip(),
        telemetry: None,
        slos: Vec::new(),
        flight_capacity: 256,
        sched: Some(sched),
        faults: None,
        abft: false,
        recovery: RecoveryPolicy::new(),
    };
    (Server::start(net, cfg), shape)
}

/// A tenant with a one-token bucket gets exactly one request through:
/// the second submit bounces with `RateLimited` and the registry's
/// counters attribute the rejection to that tenant.
#[test]
fn rate_limited_tenant_is_rejected_end_to_end() {
    let spec = TenantSpec::new("metered").rate(RateLimit::new(1e-6, 1.0));
    let (server, shape) = sched_server(SchedConfig::new().tenant(spec));
    let metered = server
        .tenants()
        .into_iter()
        .find(|t| t.name == "metered")
        .expect("registered at startup")
        .id;
    let input = synth::ifmap(&shape, 1, 11);
    let first = server
        .submit_with(input.clone(), SubmitOptions::tenant(metered))
        .expect("burst token admits the first request");
    let second = server.submit_with(input, SubmitOptions::tenant(metered));
    assert!(
        matches!(
            second,
            Err(ServeError::Admission(AdmissionError::RateLimited))
        ),
        "second submit must exhaust the bucket, got {second:?}"
    );
    first.wait().expect("admitted request completes");
    let snap = server
        .tenants()
        .into_iter()
        .find(|t| t.name == "metered")
        .unwrap();
    assert_eq!((snap.submitted, snap.admitted), (2, 1));
    assert_eq!((snap.rejected, snap.completed), (1, 1));
    server.shutdown();
}

/// Submit options are inert on a FIFO server: unknown tenants and
/// deadlines are ignored rather than rejected, preserving the legacy
/// path bit-for-bit.
#[test]
fn fifo_server_ignores_submit_options() {
    let net = NetworkBuilder::new(3, 19)
        .conv("C1", 8, 3, 2)
        .unwrap()
        .fully_connected("FC", 10)
        .unwrap()
        .build(7);
    let shape = net.stages()[0].shape;
    let server = Server::start(net, ServeConfig::new());
    assert!(server.register_tenant(TenantSpec::new("ghost")).is_none());
    assert!(server.tenants().is_empty());
    let opts = SubmitOptions::tenant(eyeriss::serve::TenantId(42))
        .deadline(Duration::ZERO)
        .priority(Priority::Low);
    let response = server
        .submit_with(synth::ifmap(&shape, 1, 3), opts)
        .expect("FIFO path has no admission control")
        .wait()
        .expect("completes despite the zero deadline");
    assert_eq!(response.batch_size, 1);
    server.shutdown();
}
