//! The acceptance tests of the `Engine` façade redesign:
//!
//! 1. A *seventh* dataflow registered through the [`DataflowRegistry`]
//!    is searched by the unmodified optimizer, planned by the unmodified
//!    cluster planner, and selectable on an [`Engine`] — no core changes.
//! 2. A cold engine reloading persisted plans serves bit-exact outputs
//!    with **zero** mapping searches.
//! 3. A custom *cost model* registered through the
//!    [`CostModelRegistry`] prices search, cluster planning, plan
//!    persistence (its fingerprint travels in the wire format) and
//!    serving — again with no core changes and no downcasts.

use eyeriss::prelude::*;
use eyeriss::Objective;
use std::sync::Arc;

/// A toy seventh dataflow: `k` ofmap channels mapped to `k` PEs, the
/// whole ifmap refetched once per channel group. Not a good dataflow —
/// the point is that nothing in `search`/`cluster`/`serve` knows it
/// exists, yet everything works through the trait.
struct ChannelCyclic;

const TOY: DataflowId = DataflowId::new("TOY-CC");

impl Dataflow for ChannelCyclic {
    fn id(&self) -> DataflowId {
        TOY
    }

    fn rf_bytes(&self) -> f64 {
        16.0
    }

    fn enumerate(&self, problem: &LayerProblem, hw: &AcceleratorConfig) -> Vec<MappingCandidate> {
        let shape = &problem.shape;
        let n = problem.batch;
        let macs = shape.macs(n) as f64;
        let mut out = Vec::new();
        let mut k = 1usize;
        while k <= shape.m.min(hw.num_pes()) {
            let groups = shape.m.div_ceil(k) as f64;
            let mut profile = eyeriss::arch::LayerAccessProfile::new();
            profile.alu_ops = macs;
            // Each channel group re-streams the full ifmap from DRAM.
            profile.ifmap.dram_reads = shape.ifmap_words(n) as f64 * groups;
            profile.ifmap.buffer_writes = profile.ifmap.dram_reads;
            profile.ifmap.buffer_reads = macs / k as f64;
            profile.ifmap.rf_reads = macs;
            profile.filter.dram_reads = shape.filter_words() as f64;
            profile.filter.buffer_writes = profile.filter.dram_reads;
            profile.filter.buffer_reads = shape.filter_words() as f64;
            profile.filter.rf_reads = macs;
            profile.psum.rf_reads = macs;
            profile.psum.rf_writes = macs;
            profile.psum.dram_writes = shape.ofmap_words(n) as f64;
            out.push(MappingCandidate {
                profile,
                active_pes: k,
                params: eyeriss::dataflow::MappingParams::Custom {
                    id: TOY,
                    knobs: [k, 0, 0, 0],
                },
            });
            k *= 2;
        }
        out
    }
}

#[test]
fn seventh_dataflow_searches_through_the_registry() {
    let mut reg = DataflowRegistry::builtin();
    reg.register(Arc::new(ChannelCyclic)).unwrap();
    assert_eq!(reg.len(), 7);

    let toy = reg.resolve(TOY).unwrap();
    let em = TableIv;
    let hw = toy.comparison_hardware(256);
    let problem = LayerProblem::new(LayerShape::conv(64, 8, 13, 3, 2).unwrap(), 2);

    // The unmodified optimizer searches the registered space.
    let best = optimize(toy.as_ref(), &problem, &hw, &em, Objective::Energy)
        .expect("toy dataflow is feasible");
    assert_eq!(best.params.dataflow(), TOY);
    assert_eq!(best.params.kind(), None, "not one of the builtin six");
    // Wider channel parallelism amortizes the ifmap re-streaming, so the
    // optimizer must pick the widest feasible k.
    let eyeriss::dataflow::MappingParams::Custom { knobs, .. } = best.params else {
        panic!("toy params must be Custom");
    };
    assert_eq!(knobs[0], 64, "optimizer should pick the widest k");

    // The unmodified cluster planner co-optimizes (partition, mapping)
    // in the toy space.
    let plan = plan_layer(
        toy.as_ref(),
        &problem,
        2,
        &hw,
        &em,
        &SharedDram::scaled(2),
        Objective::EnergyDelayProduct,
    )
    .expect("toy dataflow plans across the cluster");
    assert_eq!(plan.arrays, 2);
    assert!(plan
        .per_array
        .iter()
        .flat_map(|a| &a.tiles)
        .all(|t| t.mapping.params.dataflow() == TOY));

    // Typed validation at the trait boundary: a foreign candidate is a
    // typed error, not a panic.
    let rs = registry::builtin(DataflowKind::RowStationary);
    let rs_best = optimize(rs, &problem, &hw, &em, Objective::Energy).unwrap();
    let err = toy.validate(&rs_best, &hw).unwrap_err();
    assert!(matches!(
        err,
        eyeriss::dataflow::DataflowError::Mismatch(m) if m.expected == TOY
    ));
}

#[test]
fn engine_builds_with_a_registered_seventh_dataflow() {
    let engine = Engine::builder()
        .hardware(AcceleratorConfig::eyeriss_chip())
        .arrays(2)
        .register(Arc::new(ChannelCyclic))
        .dataflow_id(TOY)
        .build()
        .unwrap();
    assert_eq!(engine.registry().len(), 7);
    assert_eq!(engine.dataflow().id(), TOY);

    let shape = LayerShape::conv(8, 3, 13, 3, 2).unwrap();
    let problem = LayerProblem::new(shape, 4);
    let best = engine.best_mapping(&problem).unwrap();
    assert_eq!(best.params.dataflow(), TOY);

    // Plans compiled in the toy space flow through the shared cache and
    // execute bit-exactly (the functional arrays implement the chip's
    // row-stationary datapath regardless of the analytic space).
    let plan = engine.plan(&problem).unwrap();
    let input = synth::ifmap(&shape, 4, 1);
    let weights = synth::filters(&shape, 2);
    let bias = synth::biases(&shape, 3);
    let run = engine.run(&problem, &input, &weights, &bias).unwrap();
    assert_eq!(
        run.psums,
        reference::conv_accumulate(&shape, 4, &input, &weights, &bias)
    );
    assert_eq!(run.partition, plan.partition);

    // And they persist: save, reload into a second engine that also
    // registers the toy space, replan with zero searches.
    let dir = std::env::temp_dir().join("eyeriss-engine-facade");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("toy.plans");
    assert_eq!(engine.save_plans(&path).unwrap(), 1);
    let cold = Engine::builder()
        .hardware(AcceleratorConfig::eyeriss_chip())
        .arrays(2)
        .register(Arc::new(ChannelCyclic))
        .dataflow_id(TOY)
        .build()
        .unwrap();
    assert_eq!(cold.load_plans(&path).unwrap(), 1);
    let replan = cold.plan(&problem).unwrap();
    assert_eq!(*replan, *plan);
    assert_eq!(cold.cache_stats().misses, 0, "reload must not re-search");

    // A third engine *without* the registration refuses the persisted
    // plans with a typed error instead of guessing.
    let ignorant = Engine::builder().arrays(2).build().unwrap();
    assert!(matches!(
        ignorant.load_plans(&path),
        Err(EngineError::Serve(_))
    ));

    // Selecting by instance (no explicit register) must round-trip too:
    // the builder registers the instance so reloads resolve its label.
    let by_instance = Engine::builder()
        .hardware(AcceleratorConfig::eyeriss_chip())
        .arrays(2)
        .dataflow_instance(Arc::new(ChannelCyclic))
        .build()
        .unwrap();
    assert_eq!(by_instance.load_plans(&path).unwrap(), 1);
    assert_eq!(*by_instance.plan(&problem).unwrap(), *plan);
    assert_eq!(by_instance.cache_stats().misses, 0);
    std::fs::remove_file(&path).ok();
}

/// A latency-weighted 28 nm-ish scenario: cheaper DRAM energy, but a
/// finite DRAM channel that penalizes DRAM-streaming mappings under EDP.
fn lp28() -> StaticCostModel {
    StaticCostModel::new(
        "lp-28nm",
        EnergyModel::new(120.0, 5.0, 2.0, 1.0, 1.0).unwrap(),
    )
    .with_bandwidth(Level::Dram, 2.0)
    .unwrap()
}

#[test]
fn registered_cost_model_prices_search_plan_persist_and_serve() {
    // The cost-layer acceptance case, symmetric with the seventh
    // dataflow: a custom model registered through the registry drives
    // mapping search, cluster planning, persistence and serving without
    // any `match` on a concrete model type anywhere in the core crates.
    let model = lp28();
    let model_arc: Arc<dyn CostModel> = Arc::new(model);

    // 1. The unmodified optimizer prices in the custom model.
    let rs = registry::builtin(DataflowKind::RowStationary);
    let hw = rs.comparison_hardware(256);
    let problem = LayerProblem::new(LayerShape::conv(64, 8, 13, 3, 2).unwrap(), 2);
    let best = optimize(rs, &problem, &hw, model_arc.as_ref(), Objective::Energy).unwrap();
    assert_eq!(
        model.energy_of(&best.profile).to_bits(),
        best.profile
            .total_energy(&EnergyModel::new(120.0, 5.0, 2.0, 1.0, 1.0).unwrap())
            .to_bits(),
        "custom pricing is the model's own table"
    );

    // 2. The unmodified cluster planner records the pricer's descriptor.
    let plan = plan_layer(
        rs,
        &problem,
        2,
        &hw,
        model_arc.as_ref(),
        &SharedDram::scaled(2),
        Objective::EnergyDelayProduct,
    )
    .unwrap();
    assert_eq!(plan.cost, model.descriptor());

    // 3. An engine built on the registered model plans and persists it.
    let dir = std::env::temp_dir().join("eyeriss-engine-facade");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lp28.plans");
    let hw_small = AcceleratorConfig {
        grid: GridDims::new(6, 8),
        rf_bytes_per_pe: 512.0,
        buffer_bytes: 32.0 * 1024.0,
    };
    let net = eyeriss::nn::network::NetworkBuilder::new(3, 19)
        .conv("C1", 8, 3, 2)
        .unwrap()
        .pool("P1", 3, 2)
        .unwrap()
        .fully_connected("FC", 10)
        .unwrap()
        .build(7);
    let golden = net.clone();
    let shape = net.stages()[0].shape;
    let warm = Engine::builder()
        .hardware(hw_small)
        .arrays(2)
        .cost_model(Arc::clone(&model_arc))
        .build()
        .unwrap();
    assert_eq!(warm.cost_model().id().label(), "lp-28nm");
    warm.compile(&net, 1).unwrap();
    assert_eq!(warm.save_plans(&path).unwrap(), 2);

    // 4. A cold engine that registers the model reloads and serves with
    //    zero searches, bit-exactly.
    let cold = Engine::builder()
        .hardware(hw_small)
        .arrays(2)
        .register_cost_model(Arc::clone(&model_arc))
        .cost_model_id(CostModelId::new("lp-28nm"))
        .build()
        .unwrap();
    assert_eq!(cold.load_plans(&path).unwrap(), 2);
    let server = cold
        .serve_with(
            net,
            ServeOptions {
                workers: 1,
                policy: BatchPolicy::unbatched(),
                queue_capacity: 8,
                slos: Vec::new(),
                sched: None,
            },
        )
        .unwrap();
    let input = synth::ifmap(&shape, 1, 11);
    let response = server.submit(input.clone()).unwrap().wait().unwrap();
    assert_eq!(response.output, golden.forward(1, &input));
    server.shutdown();
    assert_eq!(
        cold.cache_stats().misses,
        0,
        "cold serving under the custom model must not search"
    );

    // 5. An engine *without* the registration refuses the persisted
    //    plans with a typed error; an engine with a same-named model of
    //    different numbers loads them but never cross-hits.
    let ignorant = Engine::builder()
        .hardware(hw_small)
        .arrays(2)
        .build()
        .unwrap();
    assert!(matches!(
        ignorant.load_plans(&path),
        Err(EngineError::Serve(_))
    ));
    let drifted_model: Arc<dyn CostModel> = Arc::new(StaticCostModel::new(
        "lp-28nm",
        EnergyModel::new(240.0, 5.0, 2.0, 1.0, 1.0).unwrap(),
    ));
    let drifted = Engine::builder()
        .hardware(hw_small)
        .arrays(2)
        .cost_model(drifted_model)
        .build()
        .unwrap();
    assert_eq!(drifted.load_plans(&path).unwrap(), 2);
    drifted
        .plan(&LayerProblem::new(shape, 1))
        .expect("replans under its own fingerprint");
    assert_eq!(
        drifted.cache_stats().misses,
        1,
        "distinct fingerprints under one label must re-search, not cross-hit"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn vgg_plans_persist_and_reload_with_zero_searches() {
    // The acceptance case: VGG-16's CONV stack compiled once, persisted,
    // and reloaded by a cold engine that then plans every layer without
    // a single mapping search.
    let dir = std::env::temp_dir().join("eyeriss-engine-facade");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("vgg.plans");

    let warm = Engine::builder()
        .hardware(AcceleratorConfig::eyeriss_chip())
        .arrays(1)
        .build()
        .unwrap();
    let vgg = Workload::from_layers("vgg-conv", &eyeriss::nn::vgg::conv_layers(), 1);
    let plans = warm.plan_workload(&vgg).unwrap();
    assert_eq!(plans.len(), 13);
    let warm_stats = warm.cache_stats();
    assert_eq!(warm_stats.misses, 9, "9 distinct VGG CONV shapes");
    assert_eq!(warm.save_plans(&path).unwrap(), 9);

    let cold = Engine::builder()
        .hardware(AcceleratorConfig::eyeriss_chip())
        .arrays(1)
        .build()
        .unwrap();
    assert_eq!(cold.load_plans(&path).unwrap(), 9);
    let replans = cold.plan_workload(&vgg).unwrap();
    let cold_stats = cold.cache_stats();
    assert_eq!(cold_stats.misses, 0, "cold engine must not search");
    assert_eq!(cold_stats.hits, 13, "every layer served from disk");
    for ((name, plan), (_, replan)) in plans.iter().zip(&replans) {
        assert_eq!(**plan, **replan, "{name} diverged after reload");
        assert_eq!(
            plan.energy.to_bits(),
            replan.energy.to_bits(),
            "{name} energy lost bits"
        );
        assert_eq!(
            plan.total_profile(),
            replan.total_profile(),
            "{name} access counts diverged"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn cold_engine_serves_bit_exactly_from_persisted_plans() {
    // End-to-end: engine A prewarms + persists; a cold engine B reloads
    // and *serves traffic* bit-exactly with zero mapping searches.
    let dir = std::env::temp_dir().join("eyeriss-engine-facade");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("served.plans");

    let hw = AcceleratorConfig {
        grid: GridDims::new(6, 8),
        rf_bytes_per_pe: 512.0,
        buffer_bytes: 32.0 * 1024.0,
    };
    let net = eyeriss::nn::network::NetworkBuilder::new(3, 19)
        .conv("C1", 8, 3, 2)
        .unwrap()
        .pool("P1", 3, 2)
        .unwrap()
        .fully_connected("FC", 10)
        .unwrap()
        .build(7);
    let golden = net.clone();
    let shape = net.stages()[0].shape;

    let warm = Engine::builder().hardware(hw).arrays(2).build().unwrap();
    // Compile every weighted stage at the batch sizes the unbatched
    // serving policy will form (single-request batches).
    warm.compile(&net, 1).unwrap();
    let saved = warm.save_plans(&path).unwrap();
    assert_eq!(saved, 2, "two weighted stages at batch 1");

    let cold = Engine::builder().hardware(hw).arrays(2).build().unwrap();
    assert_eq!(cold.load_plans(&path).unwrap(), 2);
    let server = cold
        .serve_with(
            net,
            ServeOptions {
                workers: 1,
                policy: BatchPolicy::unbatched(),
                queue_capacity: 8,
                slos: Vec::new(),
                sched: None,
            },
        )
        .unwrap();
    for seed in 0..4u64 {
        let input = synth::ifmap(&shape, 1, seed);
        let response = server.submit(input.clone()).unwrap().wait().unwrap();
        assert_eq!(
            response.output,
            golden.forward(1, &input),
            "served output diverged (seed {seed})"
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed(), 4);
    assert_eq!(
        cold.cache_stats().misses,
        0,
        "cold serving must run zero mapping searches"
    );
    // The workers share one network plan per batch size, so the loaded
    // layer plans are looked up exactly once each — not once per request.
    assert_eq!(cold.cache_stats().hits, 2, "2 stages, one shared compile");
    std::fs::remove_file(&path).ok();
}
