//! Property-based cluster correctness: for arbitrary valid CONV/FC
//! layers, batch sizes and cluster sizes, every feasible partition's
//! reassembled psums must be bit-exact against the single-array
//! simulator (which `random_layers.rs` in turn pins to the golden
//! reference, itself cross-checked against im2col+GEMM).

use eyeriss::cluster::{partition, Cluster, SharedDram};
use eyeriss::prelude::*;
use proptest::prelude::*;

fn arb_conv() -> impl Strategy<Value = LayerShape> {
    (1usize..10, 1usize..5, 0usize..7, 1usize..4, 1usize..3).prop_map(|(m, c, extra, r, u)| {
        let h = r + extra * u;
        LayerShape::conv(m, c, h, r, u).expect("constructed valid")
    })
}

fn arb_fc() -> impl Strategy<Value = LayerShape> {
    (1usize..12, 1usize..8, 1usize..5)
        .prop_map(|(m, c, h)| LayerShape::fully_connected(m, c, h).expect("constructed valid"))
}

fn check_all_partitions(shape: &LayerShape, n: usize, arrays: usize, seed: u64) {
    let input = synth::ifmap(shape, n, seed);
    let weights = synth::filters(shape, seed + 1);
    let bias = synth::biases(shape, seed + 2);
    let golden = reference::conv_accumulate(shape, n, &input, &weights, &bias);
    for p in partition::enumerate(shape, n, arrays) {
        let cluster = Cluster::new(arrays, AcceleratorConfig::eyeriss_chip())
            .shared_dram(SharedDram::scaled(arrays));
        let run = cluster
            .execute_partition(p, &LayerProblem::new(*shape, n), &input, &weights, &bias)
            .unwrap_or_else(|e| panic!("{p} on {arrays} arrays failed: {e}"));
        assert_eq!(
            run.psums, golden,
            "{p} on {arrays} arrays diverged for {shape:?} n={n}"
        );
        assert_eq!(run.stats.per_array.len(), arrays);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conv_partitions_are_bit_exact(
        shape in arb_conv(),
        n in 1usize..6,
        arrays in 2usize..5,
        seed in 0u64..500,
    ) {
        check_all_partitions(&shape, n, arrays, seed);
    }

    #[test]
    fn fc_partitions_are_bit_exact(
        shape in arb_fc(),
        n in 1usize..6,
        arrays in 2usize..5,
        seed in 0u64..500,
    ) {
        check_all_partitions(&shape, n, arrays, seed);
    }

    #[test]
    fn sparsity_features_are_partition_invariant(
        shape in arb_conv(),
        arrays in 2usize..5,
        sparsity in 0.0f64..0.9,
        seed in 0u64..500,
    ) {
        let n = 4usize;
        let input = synth::sparse_ifmap(&shape, n, seed, sparsity);
        let weights = synth::filters(&shape, seed + 1);
        let bias = synth::biases(&shape, seed + 2);
        let golden = reference::conv_accumulate(&shape, n, &input, &weights, &bias);
        for p in partition::enumerate(&shape, n, arrays) {
            let cluster = Cluster::new(arrays, AcceleratorConfig::eyeriss_chip())
                .zero_gating(true)
                .rlc(true);
            let run = cluster
                .execute_partition(p, &LayerProblem::new(shape, n), &input, &weights, &bias)
                .unwrap();
            prop_assert_eq!(&run.psums, &golden);
        }
    }
}

/// The acceptance-criterion case, pinned explicitly: AlexNet CONV1
/// geometry (reduced channel count for runtime) partitioned over 4
/// arrays, against the single-array simulator.
#[test]
fn alexnet_conv1_over_four_arrays_is_bit_exact() {
    let conv1 = LayerShape::conv(8, 3, 227, 11, 4).unwrap();
    let n = 4;
    let input = synth::ifmap(&conv1, n, 7);
    let weights = synth::filters(&conv1, 8);
    let bias = synth::biases(&conv1, 9);

    let mut single = Accelerator::new(AcceleratorConfig::eyeriss_chip());
    let reference_run = single.run_conv(&conv1, n, &input, &weights, &bias).unwrap();

    for p in partition::enumerate(&conv1, n, 4) {
        let cluster = Cluster::new(4, AcceleratorConfig::eyeriss_chip());
        let run = cluster
            .execute_partition(p, &LayerProblem::new(conv1, n), &input, &weights, &bias)
            .unwrap();
        assert_eq!(
            run.psums, reference_run.psums,
            "{p} diverged from single array"
        );
        assert_eq!(run.ofmap(), reference_run.ofmap());
        // The partitioned run must actually spread the work.
        let busy = run.stats.per_array.iter().filter(|s| s.macs > 0).count();
        assert!(busy >= 2, "{p} left the cluster idle");
    }
}

/// Cluster-level planning composes with the mapping search: more arrays
/// never slow the planned cluster down under the EDP objective.
#[test]
fn planned_delay_is_monotone_in_arrays() {
    use eyeriss::dataflow::search::Objective;
    let conv3 = LayerShape::conv(384, 256, 15, 3, 1).unwrap();
    let hw = AcceleratorConfig::eyeriss_chip();
    let mut last = f64::INFINITY;
    for arrays in [1usize, 2, 4, 8] {
        let plan = plan_layer(
            registry::builtin(DataflowKind::RowStationary),
            &LayerProblem::new(conv3, 16),
            arrays,
            &hw,
            &TableIv,
            &SharedDram::scaled(arrays),
            Objective::EnergyDelayProduct,
        )
        .expect("CONV3 plans at every size");
        assert!(
            plan.delay <= last * (1.0 + 1e-9),
            "{arrays} arrays slower than fewer"
        );
        last = plan.delay;
    }
}
