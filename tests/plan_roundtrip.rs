//! Round-trip property tests for the serializable plan artifacts:
//! `MappingCandidate`, `ClusterPlan` and `CompiledPlan` survive
//! serialize → deserialize with equal access counts and bit-exact
//! re-execution.

use eyeriss::cluster::wire as cluster_wire;
use eyeriss::dataflow::wire as df_wire;
use eyeriss::nn::network::NetworkBuilder;
use eyeriss::prelude::*;
use eyeriss::serve::persist;
use eyeriss::wire::Value;
use eyeriss::Objective;
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = LayerShape> {
    (1usize..10, 1usize..5, 0usize..6, 1usize..4, 1usize..3).prop_map(|(m, c, extra, r, u)| {
        let h = r + extra * u;
        LayerShape::conv(m, c, h, r, u).expect("constructed valid")
    })
}

fn small_hw() -> AcceleratorConfig {
    AcceleratorConfig {
        grid: GridDims::new(6, 8),
        rf_bytes_per_pe: 512.0,
        buffer_bytes: 32.0 * 1024.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every dataflow's optimal candidate round-trips through rendered
    /// text with equal params, equal exact access counts, and bit-equal
    /// scored energy.
    #[test]
    fn mapping_candidates_roundtrip(
        shape in arb_shape(),
        n in 1usize..4,
    ) {
        let em = EnergyModel::table_iv();
        let reg = DataflowRegistry::builtin();
        let problem = LayerProblem::new(shape, n);
        for df in reg.iter() {
            let hw = df.comparison_hardware(256);
            let Some(best) = optimize(df.as_ref(), &problem, &hw, &TableIv, Objective::Energy) else {
                continue;
            };
            let text = df_wire::encode_candidate(&best).render();
            let back = df_wire::decode_candidate(
                &Value::parse(&text).expect("rendered text parses"),
                &reg,
            )
            .expect("candidate decodes");
            prop_assert_eq!(&back, &best, "{} candidate diverged", df.id());
            prop_assert_eq!(&back.profile, &best.profile, "{} access counts", df.id());
            prop_assert_eq!(
                back.profile.total_energy(&em).to_bits(),
                best.profile.total_energy(&em).to_bits(),
                "{} energy bits", df.id()
            );
        }
    }

    /// A planned layer round-trips and the *decoded* plan re-executes to
    /// exactly the psums of the original plan (and the golden model).
    #[test]
    fn cluster_plans_roundtrip_and_reexecute_bit_exactly(
        shape in arb_shape(),
        n in 2usize..5,
        arrays in 2usize..4,
        seed in 0u64..500,
    ) {
        let reg = DataflowRegistry::builtin();
        let costs = CostModelRegistry::builtin();
        let hw = small_hw();
        let problem = LayerProblem::new(shape, n);
        let Some(plan) = plan_layer(
            registry::builtin(DataflowKind::RowStationary),
            &problem,
            arrays,
            &hw,
            &TableIv,
            &SharedDram::scaled(arrays),
            Objective::EnergyDelayProduct,
        ) else {
            return Ok(());
        };
        let text = cluster_wire::encode_plan(&plan).render();
        let back = cluster_wire::decode_plan(
            &Value::parse(&text).expect("rendered text parses"),
            &reg,
            &costs,
        )
        .expect("plan decodes");
        prop_assert_eq!(back.cost, TableIv.descriptor());
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(back.total_profile(), plan.total_profile(), "access counts");
        prop_assert_eq!(back.energy.to_bits(), plan.energy.to_bits());
        prop_assert_eq!(back.delay.to_bits(), plan.delay.to_bits());

        let input = synth::ifmap(&shape, n, seed);
        let weights = synth::filters(&shape, seed + 1);
        let bias = synth::biases(&shape, seed + 2);
        let cluster = Cluster::new(arrays, hw);
        let original = cluster.execute(&plan, &problem, &input, &weights, &bias).unwrap();
        let reloaded = cluster.execute(&back, &problem, &input, &weights, &bias).unwrap();
        prop_assert_eq!(&original.psums, &reloaded.psums, "re-execution diverged");
        prop_assert_eq!(
            &reloaded.psums,
            &reference::conv_accumulate(&shape, n, &input, &weights, &bias)
        );
    }

    /// A compiled network plan round-trips; its per-stage cluster plans
    /// re-execute bit-exactly.
    #[test]
    fn compiled_plans_roundtrip(
        m in 2usize..10,
        seed in 0u64..200,
    ) {
        let reg = DataflowRegistry::builtin();
        let costs = CostModelRegistry::builtin();
        let net = NetworkBuilder::new(3, 19)
            .conv("C1", m, 3, 2).unwrap()
            .pool("P1", 3, 2).unwrap()
            .fully_connected("FC", 10).unwrap()
            .build(seed);
        let compiler = PlanCompiler::new(2, small_hw());
        let plan = compiler.compile_network(&net, 2).unwrap();
        let text = persist::encode_compiled(&plan).render();
        let back = persist::decode_compiled(
            &Value::parse(&text).expect("rendered text parses"),
            &reg,
            &costs,
        )
        .expect("compiled plan decodes");
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(
            back.analytic_energy().to_bits(),
            plan.analytic_energy().to_bits()
        );

        // The first weighted stage's decoded plan re-executes bit-exactly.
        let (orig_stage, back_stage) = (&plan.stages[0], &back.stages[0]);
        let (eyeriss::serve::StagePlan::Layer { shape, plan: p0, .. },
             eyeriss::serve::StagePlan::Layer { plan: p1, .. }) = (orig_stage, back_stage)
        else {
            panic!("first stage is CONV");
        };
        let problem = LayerProblem::new(*shape, 2);
        let input = synth::ifmap(shape, 2, seed);
        let weights = synth::filters(shape, seed + 1);
        let bias = synth::biases(shape, seed + 2);
        let cluster = Cluster::new(2, small_hw());
        let a = cluster.execute(p0, &problem, &input, &weights, &bias).unwrap();
        let b = cluster.execute(p1, &problem, &input, &weights, &bias).unwrap();
        prop_assert_eq!(&a.psums, &b.psums);
        prop_assert_eq!(
            a.stats.macs(), b.stats.macs(),
            "measured work diverged after reload"
        );
    }
}
