//! End-to-end network execution on the simulated chip: a small
//! AlexNet-style pipeline (CONV -> ReLU -> POOL -> CONV -> ReLU -> FC)
//! where every stage runs on the accelerator and the final logits match a
//! pure-software reference exactly.

use eyeriss::prelude::*;
use eyeriss::sim::SimStats;

struct Net {
    conv1: LayerShape,
    pool1: LayerShape,
    conv2: LayerShape,
    fc: LayerShape,
    w1: Tensor4<Fix16>,
    b1: Vec<Fix16>,
    w2: Tensor4<Fix16>,
    b2: Vec<Fix16>,
    wf: Tensor4<Fix16>,
    bf: Vec<Fix16>,
}

impl Net {
    fn build() -> Self {
        // 3x19x19 input -> CONV 8@3x3/2 -> 9x9 -> POOL 3x3/2 -> 4x4
        // -> CONV 12@3x3/1 -> 2x2 -> FC 10.
        let conv1 = LayerShape::conv(8, 3, 19, 3, 2).unwrap();
        let pool1 = LayerShape::pool(8, 9, 3, 2).unwrap();
        let conv2 = LayerShape::conv(12, 8, 4, 3, 1).unwrap();
        let fc = LayerShape::fully_connected(10, 12, 2).unwrap();
        Net {
            w1: synth::filters(&conv1, 1),
            b1: synth::biases(&conv1, 2),
            w2: synth::filters(&conv2, 3),
            b2: synth::biases(&conv2, 4),
            wf: synth::filters(&fc, 5),
            bf: synth::biases(&fc, 6),
            conv1,
            pool1,
            conv2,
            fc,
        }
    }

    /// Pure-software forward pass.
    fn reference_forward(&self, n: usize, input: &Tensor4<Fix16>) -> Tensor4<Fix16> {
        let a1 = reference::conv_forward(&self.conv1, n, input, &self.w1, &self.b1);
        let p1 = reference::max_pool(&self.pool1, n, &a1);
        let a2 = reference::conv_forward(&self.conv2, n, &p1, &self.w2, &self.b2);
        let logits = reference::conv_accumulate(&self.fc, n, &a2, &self.wf, &self.bf);
        reference::quantize(&logits, false)
    }

    /// The same pass executed stage-by-stage on the simulated chip.
    fn chip_forward(
        &self,
        n: usize,
        input: &Tensor4<Fix16>,
        chip: &mut Accelerator,
    ) -> (Tensor4<Fix16>, Vec<SimStats>) {
        let mut all_stats = Vec::new();
        let r1 = chip
            .run_conv(&self.conv1, n, input, &self.w1, &self.b1)
            .unwrap();
        all_stats.push(r1.stats.clone());
        let a1 = r1.ofmap();
        let (p1, pool_stats) = chip.run_pool(&self.pool1, n, &a1);
        all_stats.push(pool_stats);
        let r2 = chip
            .run_conv(&self.conv2, n, &p1, &self.w2, &self.b2)
            .unwrap();
        all_stats.push(r2.stats.clone());
        let a2 = r2.ofmap();
        let rf = chip.run_conv(&self.fc, n, &a2, &self.wf, &self.bf).unwrap();
        all_stats.push(rf.stats.clone());
        (reference::quantize(&rf.psums, false), all_stats)
    }
}

#[test]
fn full_network_is_bit_exact() {
    let net = Net::build();
    let n = 3;
    let input = synth::ifmap(&net.conv1, n, 77);
    let golden = net.reference_forward(n, &input);
    let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
    let (logits, stats) = net.chip_forward(n, &input, &mut chip);
    assert_eq!(logits, golden);
    assert_eq!(stats.len(), 4);
    assert!(stats.iter().all(|s| s.macs > 0));
}

#[test]
fn sparsity_features_do_not_change_the_network_output() {
    let net = Net::build();
    let n = 2;
    let input = synth::sparse_ifmap(&net.conv1, n, 88, 0.5);
    let golden = net.reference_forward(n, &input);
    let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip())
        .zero_gating(true)
        .rlc(true);
    let (logits, stats) = net.chip_forward(n, &input, &mut chip);
    assert_eq!(logits, golden);
    // ReLU outputs feeding conv2 and fc should trigger real gating.
    assert!(stats[2].skipped_macs > 0, "no gating on post-ReLU input");
}

#[test]
fn network_energy_accumulates_across_layers() {
    let net = Net::build();
    let input = synth::ifmap(&net.conv1, 1, 5);
    let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
    let (_, stats) = net.chip_forward(1, &input, &mut chip);
    let em = TableIv;
    let total: f64 = stats.iter().map(|s| s.energy(&em)).sum();
    let macs: f64 = stats.iter().map(|s| (s.macs + s.skipped_macs) as f64).sum();
    let per_op = total / macs;
    // Small layers have poor reuse, but the figure must stay in a sane
    // normalized-energy regime (a few to a few tens of MAC-equivalents).
    assert!((1.0..60.0).contains(&per_op), "energy/op {per_op:.2}");
}
