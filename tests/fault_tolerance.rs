//! Acceptance tests for the fault-tolerance layer: injected worker
//! panics leave the server completing subsequent requests with the loss
//! typed (never a hang), transient faults retry to bit-exact outputs
//! under arbitrary seeded schedules, quarantine never drops an
//! in-flight request, and the legacy FIFO (non-sched) path survives the
//! same injections as the scheduling path.

use eyeriss::nn::network::NetworkBuilder;
use eyeriss::prelude::*;
use eyeriss::serve::{
    BatchPolicy, FaultKind, FaultPlan, FaultSpec, RecoveryPolicy, SchedConfig, ServeConfig,
    ServeError, Server,
};
use proptest::prelude::*;
use std::time::Duration;

fn tiny_net() -> eyeriss::nn::network::Network {
    NetworkBuilder::new(3, 19)
        .conv("C1", 8, 3, 2)
        .unwrap()
        .pool("P1", 3, 2)
        .unwrap()
        .conv("C2", 12, 3, 1)
        .unwrap()
        .fully_connected("FC", 10)
        .unwrap()
        .build(7)
}

fn fault_cfg(workers: usize, arrays: usize, faults: FaultPlan) -> ServeConfig {
    ServeConfig {
        arrays,
        workers,
        policy: BatchPolicy::unbatched(),
        queue_capacity: 64,
        hw: AcceleratorConfig::eyeriss_chip(),
        telemetry: None,
        slos: Vec::new(),
        flight_capacity: 256,
        sched: None,
        faults: Some(faults),
        abft: true,
        recovery: RecoveryPolicy::new(),
    }
}

/// An injected worker panic on the FIFO path types the lost request as
/// [`ServeError::WorkerLost`] — the client returns immediately, never
/// hangs — and the supervisor restarts the slot, so every subsequent
/// request on the *same* server completes bit-exactly.
#[test]
fn fifo_worker_panic_is_typed_and_the_pool_self_heals() {
    let net = tiny_net();
    let golden = net.clone();
    let shape = net.stages()[0].shape;
    let plan = FaultPlan::new(7).spec(FaultSpec::once(FaultKind::WorkerPanic, 0).target(0));
    let server = Server::start(net, fault_cfg(1, 2, plan));

    let lost = server.submit(synth::ifmap(&shape, 1, 1)).unwrap().wait();
    assert!(matches!(lost, Err(ServeError::WorkerLost)), "{lost:?}");

    for i in 2..6u64 {
        let input = synth::ifmap(&shape, 1, i);
        let response = server.submit(input.clone()).unwrap().wait().unwrap();
        assert_eq!(
            response.output,
            golden.forward(1, &input),
            "post-restart request {i} diverged"
        );
    }
    let snap = server.snapshot();
    assert_eq!(snap.worker_restarts, 1);
    assert_eq!(snap.failed, 1);
    assert_eq!(snap.completed, 4);
    assert_eq!(snap.live_workers, 1, "the restarted slot rejoins the pool");
    server.shutdown();
}

/// The same injection through the scheduling path: the loss is typed,
/// the tenant's books balance (`failed` absorbs the admitted request —
/// `submitted` counts never leak), and the restarted pool completes the
/// tenant's next request.
#[test]
fn sched_worker_panic_marks_the_tenant_request_failed() {
    let net = tiny_net();
    let golden = net.clone();
    let shape = net.stages()[0].shape;
    let plan = FaultPlan::new(9).spec(FaultSpec::once(FaultKind::WorkerPanic, 0).target(0));
    let mut cfg = fault_cfg(1, 2, plan);
    cfg.sched = Some(SchedConfig::new());
    let server = Server::start(net, cfg);

    let lost = server.submit(synth::ifmap(&shape, 1, 1)).unwrap().wait();
    assert!(matches!(lost, Err(ServeError::WorkerLost)), "{lost:?}");
    let t = &server.tenants()[0];
    assert_eq!((t.submitted, t.admitted), (1, 1));
    assert_eq!((t.failed, t.completed), (1, 0), "the loss is attributed");

    let input = synth::ifmap(&shape, 1, 2);
    let response = server.submit(input.clone()).unwrap().wait().unwrap();
    assert_eq!(response.output, golden.forward(1, &input));
    let t = &server.tenants()[0];
    assert_eq!(
        (t.submitted, t.admitted, t.completed, t.failed),
        (2, 2, 1, 1)
    );
    assert_eq!(server.snapshot().worker_restarts, 1);
    server.shutdown();
}

/// A persistent crash quarantines its array and retires its
/// single-array worker — and through all of it not one in-flight
/// request is dropped: the struck batches re-queue onto the surviving
/// worker and complete bit-exactly.
#[test]
fn quarantine_never_drops_an_in_flight_request() {
    let net = tiny_net();
    let golden = net.clone();
    let shape = net.stages()[0].shape;
    // Array 1 (worker 1's only array) crashes on every execution: two
    // consecutive strikes quarantine it and the worker retires.
    let plan = FaultPlan::new(3).spec(FaultSpec::from(FaultKind::Crash, 0).target(1));
    let server = Server::start(net, fault_cfg(2, 1, plan));

    let mut submitted = 0u64;
    // Bursts keep both workers busy so the doomed worker keeps drawing
    // batches until its second strike; cap well above the two pickups
    // quarantine needs.
    while server.snapshot().quarantined_arrays == 0 && submitted < 64 {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                submitted += 1;
                let input = synth::ifmap(&shape, 1, submitted);
                (submitted, server.submit(input).unwrap())
            })
            .collect();
        for (seed, handle) in handles {
            let input = synth::ifmap(&shape, 1, seed);
            let response = handle.wait().expect("crashed batches must re-queue");
            assert_eq!(
                response.output,
                golden.forward(1, &input),
                "request {seed} diverged"
            );
        }
    }
    let snap = server.snapshot();
    assert_eq!(snap.quarantined_arrays, 1, "the crashing array quarantines");
    assert_eq!(snap.live_workers, 1, "its worker retires");
    assert_eq!(snap.failed, 0, "no request was dropped or exhausted");
    assert_eq!(snap.completed, submitted);

    // The degraded pool keeps serving bit-exactly.
    let input = synth::ifmap(&shape, 1, 999);
    let response = server.submit(input.clone()).unwrap().wait().unwrap();
    assert_eq!(response.output, golden.forward(1, &input));
    server.shutdown();
}

/// One sampled fault for the chaos properties below, as a raw
/// `(kind index, run, target)` tuple, firing once at a small run index
/// on one of the four global arrays (2 workers x 2 arrays). The first
/// `kinds` entries of [`KINDS`] are eligible.
fn arb_fault(kinds: usize) -> impl Strategy<Value = (usize, u64, usize)> {
    (0usize..kinds, 0u64..3, 0usize..4)
}

/// Ordered so a prefix selects the detection-guaranteed kinds: a psum
/// bit flip always shifts the ABFT sum by ±2^b, a crash is typed, a
/// stall only slows — while weight/ifmap corruption (the tail) is
/// caught only when its net effect on the checksum is non-zero.
const KINDS: [FaultKind; 5] = [
    FaultKind::PsumBitFlip,
    FaultKind::Crash,
    FaultKind::Stall,
    FaultKind::WeightBitFlip,
    FaultKind::DramCorrupt,
];

fn spec_of((kind, run, target): (usize, u64, usize)) -> FaultSpec {
    FaultSpec::once(KINDS[kind], run).target(target)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Chaos property: under ANY schedule of one-shot psum flips,
    /// crashes and stalls (any seed, any timing), an ABFT-enabled FIFO
    /// server completes every request bit-exactly. At most three
    /// strikes can hit one batch and the retry budget is three, so
    /// nothing ever exhausts; ABFT's checksum catches every single
    /// psum corruption before a wrong answer can escape. Sampled specs
    /// are deduplicated to one fault per array execution `(run,
    /// target)` — the additive checksum guarantees detection of any
    /// *single* corrupted execution, while two coincident corruptions
    /// can cancel in the sum (the classic ABFT single-error detection
    /// bound, exercised and documented in `eyeriss_nn::abft`).
    #[test]
    fn prop_transient_faults_always_retry_to_bit_exact_outputs(
        seed in 0u64..1000,
        specs in proptest::collection::vec(arb_fault(3), 1..4),
    ) {
        let net = tiny_net();
        let golden = net.clone();
        let shape = net.stages()[0].shape;
        let mut seen = std::collections::HashSet::new();
        let plan = specs
            .into_iter()
            .filter(|&(_, run, target)| seen.insert((run, target)))
            .map(spec_of)
            .fold(FaultPlan::new(seed), |plan, spec| plan.spec(spec));
        let server = Server::start(net, fault_cfg(2, 2, plan));
        let handles: Vec<_> = (0..6u64)
            .map(|i| (i, server.submit(synth::ifmap(&shape, 1, i)).unwrap()))
            .collect();
        for (i, handle) in handles {
            let response = handle.wait().expect("non-panic faults always retry");
            let input = synth::ifmap(&shape, 1, i);
            prop_assert_eq!(
                response.output,
                golden.forward(1, &input),
                "request {} diverged under injected faults",
                i
            );
        }
        let snap = server.snapshot();
        prop_assert_eq!(snap.completed, 6);
        prop_assert_eq!(snap.failed, 0);
        // Detections never exceed injections (crashes and stalls are
        // injected but not ABFT-detected).
        prop_assert!(snap.faults_detected <= snap.faults_injected);
        server.shutdown();
    }

    /// Liveness property over EVERY non-panic fault kind, including
    /// weight/ifmap corruption whose checksum detection is
    /// overwhelming-probability rather than guaranteed: whatever is
    /// injected, every client gets a definitive answer — a response or
    /// a typed error, never a hang — and the server's books balance.
    #[test]
    fn prop_no_fault_schedule_hangs_a_client(
        seed in 0u64..1000,
        specs in proptest::collection::vec(arb_fault(5), 1..4),
    ) {
        let net = tiny_net();
        let shape = net.stages()[0].shape;
        let plan = specs
            .into_iter()
            .map(spec_of)
            .fold(FaultPlan::new(seed), |plan, spec| plan.spec(spec));
        let server = Server::start(net, fault_cfg(2, 2, plan));
        let handles: Vec<_> = (0..6u64)
            .map(|i| server.submit(synth::ifmap(&shape, 1, i)).unwrap())
            .collect();
        let mut answered = 0u64;
        for handle in handles {
            // Returning at all is the property; both arms count.
            match handle.wait() {
                Ok(_) => answered += 1,
                Err(_) => answered += 1,
            }
        }
        prop_assert_eq!(answered, 6);
        let snap = server.snapshot();
        prop_assert_eq!(snap.completed + snap.failed, 6);
        server.shutdown();
    }
}

/// Shutdown with a dead-and-restarted worker still drains: queued work
/// after a panic completes or fails typed, never hangs the caller.
#[test]
fn shutdown_after_panic_leaves_no_hung_clients() {
    let net = tiny_net();
    let shape = net.stages()[0].shape;
    let plan = FaultPlan::new(13).spec(FaultSpec::once(FaultKind::WorkerPanic, 0).target(0));
    let mut cfg = fault_cfg(1, 2, plan);
    cfg.policy = BatchPolicy {
        max_batch: 4,
        max_wait: Duration::from_millis(5),
    };
    let server = Server::start(net, cfg);
    let handles: Vec<_> = (0..8u64)
        .map(|i| server.submit(synth::ifmap(&shape, 1, i)).unwrap())
        .collect();
    server.shutdown();
    let (mut ok, mut lost) = (0, 0);
    for handle in handles {
        match handle.wait() {
            Ok(_) => ok += 1,
            Err(ServeError::WorkerLost) => lost += 1,
            Err(e) => panic!("unexpected error after shutdown: {e}"),
        }
    }
    assert_eq!(ok + lost, 8, "every client got a definitive answer");
    assert!(lost >= 1, "the panicked batch is typed as lost");
    assert!(ok >= 1, "the restarted worker completed the rest");
}
