//! Cross-validation of the analytical model against the functional
//! simulator — the reproduction's analogue of the paper's chip
//! verification (Section VII-A): both implement the same row-stationary
//! mapping, so their measured access counts must agree on the exact
//! quantities and land in the same energy regime.

use eyeriss::prelude::*;

fn simulate(shape: &LayerShape, n: usize, config: AcceleratorConfig) -> eyeriss::sim::SimStats {
    let input = synth::ifmap(shape, n, 21);
    let weights = synth::filters(shape, 22);
    let bias = synth::biases(shape, 23);
    let mut chip = Accelerator::new(config);
    let run = chip
        .run_conv(shape, n, &input, &weights, &bias)
        .expect("mappable layer");
    // Functional correctness first: the counts only mean something if the
    // computation is right.
    let golden = reference::conv_accumulate(shape, n, &input, &weights, &bias);
    assert_eq!(run.psums, golden);
    run.stats
}

fn test_shapes() -> Vec<(LayerShape, usize)> {
    vec![
        // Shape-preserving shrinks of AlexNet layers (same R/U/E geometry).
        (LayerShape::conv(8, 3, 227, 11, 4).unwrap(), 1), // CONV1 geometry
        (LayerShape::conv(8, 6, 31, 5, 1).unwrap(), 2),   // CONV2 geometry
        (LayerShape::conv(12, 8, 15, 3, 1).unwrap(), 2),  // CONV3 geometry
        (LayerShape::fully_connected(24, 16, 6).unwrap(), 4), // FC1 geometry
    ]
}

/// Exact invariants shared by the model and simulator.
#[test]
fn exact_counts_agree() {
    let config = AcceleratorConfig::eyeriss_chip();
    for (shape, n) in test_shapes() {
        let stats = simulate(&shape, n, config);
        let macs = shape.macs(n) as f64;
        // Every MAC reads both operands from the RF under RS.
        assert_eq!(stats.profile.ifmap.rf_reads, macs);
        assert_eq!(stats.profile.filter.rf_reads, macs);
        // Exactly one DRAM write per ofmap value (Section VII-B).
        assert_eq!(stats.profile.psum.dram_writes, shape.ofmap_words(n) as f64);
        // Psum RF traffic: at most one read+write per MAC.
        assert!(stats.profile.psum.rf_reads <= macs);
        assert!(stats.profile.psum.rf_writes <= macs);
        // Each ifmap word enters the chip at least once.
        assert!(stats.profile.ifmap.dram_reads >= shape.ifmap_words(n) as f64);
        // Each filter word enters the chip at least once.
        assert!(stats.profile.filter.dram_reads >= shape.filter_words() as f64);
    }
}

/// The simulator's measured profile matches the analytical profile of the
/// *same* mapping within a modest tolerance (the analytical model charges
/// full-group aggregates; the simulator clamps partial groups exactly).
#[test]
fn access_profiles_track_the_analytical_model() {
    let config = AcceleratorConfig::eyeriss_chip();
    for (shape, n) in test_shapes() {
        let stats = simulate(&shape, n, config);
        let model = optimize(
            registry::builtin(DataflowKind::RowStationary),
            &LayerProblem::new(shape, n),
            &config,
            &TableIv,
            Objective::Energy,
        )
        .expect("feasible")
        .profile;
        // Compare per-level on-chip traffic within 2x (halo handling and
        // partial-group clamping differ slightly; orders of magnitude and
        // the energy regime must match).
        for (name, sim_v, model_v) in [
            (
                "ifmap buffer reads",
                stats.profile.ifmap.buffer_reads,
                model.ifmap.buffer_reads,
            ),
            (
                "ifmap array hops",
                stats.profile.ifmap.array_hops,
                model.ifmap.array_hops,
            ),
            (
                "filter array hops",
                stats.profile.filter.array_hops,
                model.filter.array_hops,
            ),
            (
                "psum array hops",
                stats.profile.psum.array_hops,
                model.psum.array_hops,
            ),
        ] {
            if model_v == 0.0 {
                continue;
            }
            let ratio = sim_v / model_v;
            assert!(
                (0.4..=2.5).contains(&ratio),
                "{name}: sim {sim_v:.3e} vs model {model_v:.3e} (ratio {ratio:.2}) for {shape:?}"
            );
        }
    }
}

/// The chip-verification headline: for CONV layers the RF consumes around
/// 4x the energy of the remaining on-chip levels, in both the model and
/// the simulator.
#[test]
fn rf_ratio_matches_chip_measurement() {
    let config = AcceleratorConfig::eyeriss_chip();
    let em = EnergyModel::table_iv();
    // Enough filters and channels that both foldings (filter groups and
    // channel groups) exercise the buffer, as full AlexNet layers do.
    let shape = LayerShape::conv(96, 16, 15, 3, 1).unwrap();
    let stats = simulate(&shape, 1, config);
    let ratio = stats.rf_to_onchip_rest_ratio(&TableIv);
    // RF must dominate on-chip energy (the full-chip measurement is ~4:1;
    // shrunk layers land in the same regime, not the exact figure).
    assert!(ratio > 1.5, "RF does not dominate: ratio {ratio:.2}");
    // And the simulator must agree with the analytical model's ratio for
    // the same layer within 2x.
    let model = optimize(
        registry::builtin(DataflowKind::RowStationary),
        &LayerProblem::new(shape, 1),
        &config,
        &TableIv,
        Objective::Energy,
    )
    .expect("feasible")
    .profile;
    let model_ratio = model.energy_at_level(&em, Level::Rf)
        / (model.energy_at_level(&em, Level::Buffer) + model.energy_at_level(&em, Level::Array));
    let agreement = ratio / model_ratio;
    assert!(
        (0.4..=2.5).contains(&agreement),
        "sim ratio {ratio:.2} vs model ratio {model_ratio:.2}"
    );
}

/// Simulated cycles respect the compute lower bound and utilization is a
/// valid fraction.
#[test]
fn cycle_counts_are_physical() {
    let config = AcceleratorConfig::eyeriss_chip();
    for (shape, n) in test_shapes() {
        let stats = simulate(&shape, n, config);
        let total_work = stats.macs + stats.skipped_macs;
        assert_eq!(total_work, shape.macs(n));
        assert!(stats.cycles as f64 >= total_work as f64 / 168.0);
        let util = stats.utilization(168);
        assert!(util > 0.0 && util <= 1.0, "utilization {util}");
    }
}
