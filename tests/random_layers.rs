//! Property-based integration tests: for arbitrary valid layer shapes the
//! simulator must be bit-exact against the golden reference (which itself
//! is cross-checked against im2col+GEMM in `eyeriss-nn`), and every
//! dataflow's access counts must satisfy physical invariants.

use eyeriss::prelude::*;
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = LayerShape> {
    (1usize..6, 1usize..6, 0usize..8, 1usize..4, 1usize..3).prop_map(|(m, c, extra, r, u)| {
        let h = r + extra * u;
        LayerShape::conv(m, c, h, r, u).expect("constructed valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sim_matches_golden_on_arbitrary_shapes(
        shape in arb_shape(),
        n in 1usize..3,
        seed in 0u64..500,
    ) {
        let input = synth::ifmap(&shape, n, seed);
        let weights = synth::filters(&shape, seed + 1);
        let bias = synth::biases(&shape, seed + 2);
        let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
        let run = chip.run_conv(&shape, n, &input, &weights, &bias).unwrap();
        let golden = reference::conv_accumulate(&shape, n, &input, &weights, &bias);
        prop_assert_eq!(run.psums, golden);
        prop_assert_eq!(run.stats.macs, shape.macs(n));
    }

    #[test]
    fn zero_gating_never_changes_results(
        shape in arb_shape(),
        sparsity in 0.0f64..0.95,
        seed in 0u64..500,
    ) {
        let input = synth::sparse_ifmap(&shape, 1, seed, sparsity);
        let weights = synth::filters(&shape, seed + 1);
        let bias = synth::biases(&shape, seed + 2);
        let mut plain = Accelerator::new(AcceleratorConfig::eyeriss_chip());
        let mut gated = Accelerator::new(AcceleratorConfig::eyeriss_chip())
            .zero_gating(true)
            .rlc(true);
        let a = plain.run_conv(&shape, 1, &input, &weights, &bias).unwrap();
        let b = gated.run_conv(&shape, 1, &input, &weights, &bias).unwrap();
        prop_assert_eq!(&a.psums, &b.psums);
        prop_assert_eq!(
            b.stats.macs + b.stats.skipped_macs,
            a.stats.macs + a.stats.skipped_macs
        );
    }

    #[test]
    fn every_dataflow_produces_physical_counts(
        shape in arb_shape(),
        n in 1usize..5,
    ) {
        let em = EnergyModel::table_iv();
        for kind in DataflowKind::ALL {
            let df = registry::builtin(kind);
            let hw = df.comparison_hardware(256);
            for cand in df.enumerate(&LayerProblem::new(shape, n), &hw) {
                prop_assert!(cand.profile.is_valid(), "{kind}: invalid counts");
                prop_assert!(cand.active_pes >= 1 && cand.active_pes <= 256,
                    "{kind}: active {}", cand.active_pes);
                // ALU work is invariant across mappings.
                prop_assert_eq!(cand.profile.alu_ops, shape.macs(n) as f64);
                // Exactly one DRAM write per ofmap value.
                prop_assert_eq!(cand.profile.psum.dram_writes,
                    shape.ofmap_words(n) as f64);
                // Inputs enter the chip at least once each — unless the
                // stride exceeds the filter, which genuinely skips pixels.
                if shape.u <= shape.r {
                    prop_assert!(cand.profile.ifmap.dram_reads
                        >= shape.ifmap_words(n) as f64 * (1.0 - 1e-9));
                }
                prop_assert!(cand.profile.filter.dram_reads
                    >= shape.filter_words() as f64 * (1.0 - 1e-9));
                // Energy is at least the compute floor.
                prop_assert!(cand.profile.total_energy(&em) >= shape.macs(n) as f64);
            }
        }
    }

    #[test]
    fn optimizer_returns_minimum_of_its_space(
        shape in arb_shape(),
        n in 1usize..4,
    ) {
        let em = EnergyModel::table_iv();
        let rs = registry::builtin(DataflowKind::RowStationary);
        let hw = rs.comparison_hardware(256);
        let problem = LayerProblem::new(shape, n);
        let Some(best) = optimize(rs, &problem, &hw, &TableIv, Objective::Energy) else {
            return Ok(());
        };
        let best_energy = best.profile.total_energy(&em);
        for cand in rs.enumerate(&problem, &hw) {
            prop_assert!(
                cand.profile.total_energy(&em) >= best_energy * (1.0 - 1e-12)
                    // The utilization tie-break may pick a near-tied
                    // candidate within 10% of the optimum.
                    || best_energy <= cand.profile.total_energy(&em) * 1.10
            );
        }
    }
}
