//! Integration tests asserting the paper's headline claims end-to-end,
//! across crates (shapes from `nn`, hardware from `arch`, mappings from
//! `dataflow`, metrics from `analysis`).

use eyeriss::analysis::experiments::sweep;
use eyeriss::prelude::*;

/// Section VII-B / conclusions: "the RS dataflow is 1.4x to 2.5x more
/// energy efficient in convolutional layers" than every other dataflow.
/// Our reimplementation must land RS strictly best, with ratios in a
/// band around the paper's (the mapper and memory models are rebuilt
/// from the text, so exact factors shift slightly).
#[test]
fn rs_energy_advantage_in_conv_layers() {
    for pes in [256usize, 512, 1024] {
        for batch in [1usize, 16, 64] {
            let rs = run_conv_layers(DataflowKind::RowStationary, batch, pes)
                .expect("RS always operates");
            for kind in DataflowKind::ALL.into_iter().skip(1) {
                let Some(other) = run_conv_layers(kind, batch, pes) else {
                    continue;
                };
                let ratio = other.energy_per_op() / rs.energy_per_op();
                assert!(
                    ratio > 1.0,
                    "{kind} beat RS at {pes} PEs, N={batch} (ratio {ratio:.2})"
                );
                assert!(
                    ratio < 4.0,
                    "{kind} implausibly bad at {pes} PEs, N={batch} (ratio {ratio:.2})"
                );
            }
        }
    }
}

/// The headline band itself at the paper's central operating points.
#[test]
fn rs_advantage_band_at_batch_16() {
    let rs = run_conv_layers(DataflowKind::RowStationary, 16, 256).unwrap();
    let mut ratios = Vec::new();
    for kind in DataflowKind::ALL.into_iter().skip(1) {
        if let Some(other) = run_conv_layers(kind, 16, 256) {
            ratios.push(other.energy_per_op() / rs.energy_per_op());
        }
    }
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    // Paper: 1.4x to 2.5x. Allow a reimplementation margin.
    assert!(min > 1.2, "weakest advantage {min:.2} below band");
    assert!(max < 3.2, "strongest advantage {max:.2} above band");
}

/// Conclusions: "at least 1.3x more energy efficient in fully-connected
/// layers for batch sizes of at least 16" — checked with a margin since
/// the DRAM floor dominates FC and compresses ratios.
#[test]
fn rs_energy_advantage_in_fc_layers() {
    for batch in [16usize, 64, 256] {
        let rs = run_fc_layers(DataflowKind::RowStationary, batch, 1024).unwrap();
        for kind in DataflowKind::ALL.into_iter().skip(1) {
            let Some(other) = run_fc_layers(kind, batch, 1024) else {
                continue;
            };
            let ratio = other.energy_per_op() / rs.energy_per_op();
            assert!(
                ratio > 1.05,
                "{kind} too close to RS on FC at N={batch} (ratio {ratio:.2})"
            );
        }
    }
}

/// Fig. 11a: WS cannot operate at batch 64 on 256 PEs but recovers on
/// larger arrays, and everything else always operates.
#[test]
fn ws_feasibility_boundary() {
    assert!(run_conv_layers(DataflowKind::WeightStationary, 64, 256).is_none());
    assert!(run_conv_layers(DataflowKind::WeightStationary, 64, 512).is_some());
    assert!(run_conv_layers(DataflowKind::WeightStationary, 64, 1024).is_some());
    for kind in DataflowKind::ALL {
        if kind != DataflowKind::WeightStationary {
            assert!(run_conv_layers(kind, 64, 256).is_some(), "{kind}");
        }
    }
}

/// Fig. 13: RS has the lowest EDP at every operating point.
#[test]
fn rs_lowest_edp() {
    for pes in [256usize, 1024] {
        for batch in [1usize, 16] {
            let rs = run_conv_layers(DataflowKind::RowStationary, batch, pes).unwrap();
            for kind in DataflowKind::ALL.into_iter().skip(1) {
                if let Some(other) = run_conv_layers(kind, batch, pes) {
                    assert!(
                        other.edp_per_op() > rs.edp_per_op(),
                        "{kind} EDP beat RS at {pes} PEs, N={batch}"
                    );
                }
            }
        }
    }
}

/// Section VII-B: batch growth from 1 to 16 reduces DRAM accesses/op for
/// every dataflow; the paper notes saturation beyond that.
#[test]
fn batch_scaling_reduces_dram() {
    for kind in DataflowKind::ALL {
        let (Some(n1), Some(n16)) = (
            run_conv_layers(kind, 1, 512),
            run_conv_layers(kind, 16, 512),
        ) else {
            continue;
        };
        assert!(
            n16.dram_accesses_per_op() <= n1.dram_accesses_per_op() * 1.0001,
            "{kind} DRAM/op rose with batch"
        );
    }
}

/// Section VII-D: scaling the PE array from 32 to 288 under fixed area
/// buys order-of-magnitude throughput for a small energy increase.
#[test]
fn area_allocation_tradeoff() {
    use eyeriss::analysis::experiments::fig15;
    let pts = fig15::run();
    assert!(pts.len() >= 8, "sweep too sparse: {}", pts.len());
    let first = pts.first().unwrap();
    let last = pts.last().unwrap();
    assert!(first.delay_per_op / last.delay_per_op > 5.0);
    assert!(last.energy_per_op / first.energy_per_op < 1.35);
}

/// The Fig. 12/13 normalization reference is self-consistent.
#[test]
fn sweep_reference_is_rs_at_256_batch_1() {
    let reference = sweep::rs_conv_reference();
    assert_eq!(reference.kind, DataflowKind::RowStationary);
    assert_eq!(reference.num_pes, 256);
    assert_eq!(reference.batch, 1);
}
