//! Property-based telemetry correctness: the streaming log-bucketed
//! histogram's quantiles must honor the documented error bound against
//! the exact nearest-rank implementation (`eyeriss_serve::metrics::
//! percentile`), snapshot merging must be order-insensitive and
//! associative, and the lock-free registry must count exactly under
//! multi-threaded hammering.

use eyeriss::prelude::*;
use eyeriss::telemetry::{HistogramSnapshot, EXACT_BELOW, RELATIVE_ERROR};
use proptest::prelude::*;
use std::time::Duration;

/// Asserts `approx` is within the histogram's documented bound of the
/// exact quantile: exact for values below [`EXACT_BELOW`], within
/// [`RELATIVE_ERROR`] relative error above it.
fn assert_within_bound(approx: u64, exact: u64, q: f64) {
    if exact < EXACT_BELOW {
        assert_eq!(approx, exact, "q={q}: sub-{EXACT_BELOW} values are exact");
    } else {
        let err = (approx as f64 - exact as f64).abs() / exact as f64;
        assert!(
            err <= RELATIVE_ERROR,
            "q={q}: approx {approx} vs exact {exact} (relative error {err:.4} > {RELATIVE_ERROR})"
        );
    }
}

fn record_all(samples: &[u64]) -> HistogramSnapshot {
    let tele = Telemetry::new_enabled();
    let h = tele.histogram("test.samples");
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// p50/p99 from the streaming histogram against the exact
    /// nearest-rank percentile over the same samples.
    #[test]
    fn bucketed_quantiles_match_exact_nearest_rank(
        samples in proptest::collection::vec(0u64..5_000_000, 1..200),
        qi in 0usize..3,
    ) {
        let q = [0.5, 0.9, 0.99][qi];
        let snap = record_all(&samples);
        let durations: Vec<Duration> =
            samples.iter().map(|&v| Duration::from_nanos(v)).collect();
        let exact = eyeriss::serve::percentile(&durations, q).as_nanos() as u64;
        let approx = snap.quantile(q).expect("non-empty histogram");
        assert_within_bound(approx, exact, q);
    }

    /// Merging snapshots is associative and order-insensitive: any
    /// grouping of per-shard snapshots equals one histogram fed every
    /// sample, bucket for bucket.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..1_000_000, 0..60),
        b in proptest::collection::vec(0u64..1_000_000, 0..60),
        c in proptest::collection::vec(0u64..1_000_000, 0..60),
    ) {
        let (sa, sb, sc) = (record_all(&a), record_all(&b), record_all(&c));

        let mut ab_c = sa.clone();
        ab_c.merge(&sb);
        ab_c.merge(&sc);

        let mut a_bc = sc.clone();
        a_bc.merge(&sb);
        a_bc.merge(&sa);

        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = record_all(&all);

        assert_eq!(ab_c, direct, "(a+b)+c must equal one-shot recording");
        assert_eq!(a_bc, direct, "(c+b)+a must equal one-shot recording");
        assert_eq!(direct.count(), all.len() as u64);
    }
}

/// Counters and gauges resolved from many threads against one registry
/// must land every increment exactly once.
#[test]
fn registry_counts_exactly_under_contention() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    let tele = Telemetry::new_enabled();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let tele = tele.clone();
            scope.spawn(move || {
                // Re-resolve handles mid-run: resolution must dedupe
                // onto the same underlying atomics.
                let counter = tele.counter("hammer.count");
                let gauge = tele.gauge("hammer.level");
                let hist = tele.histogram("hammer.dist");
                for i in 0..PER_THREAD {
                    counter.inc();
                    gauge.inc();
                    hist.record(t * PER_THREAD + i);
                    if i % 1024 == 0 {
                        let again = tele.counter("hammer.count");
                        again.add(0);
                    }
                }
                for _ in 0..PER_THREAD {
                    gauge.dec();
                }
            });
        }
    });
    let snap = tele.snapshot();
    assert_eq!(snap.counter("hammer.count"), Some(THREADS * PER_THREAD));
    assert_eq!(snap.gauge("hammer.level"), Some(0));
    let dist = snap.histogram("hammer.dist").expect("histogram registered");
    assert_eq!(dist.count(), THREADS * PER_THREAD);
    let max = dist.quantile(1.0).expect("non-empty");
    let exact_max = THREADS * PER_THREAD - 1;
    assert_within_bound(max, exact_max, 1.0);
}
