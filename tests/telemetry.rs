//! Property-based telemetry correctness: the streaming log-bucketed
//! histogram's quantiles must honor the documented error bound against
//! the exact nearest-rank implementation (`eyeriss_serve::metrics::
//! percentile`), snapshot merging must be order-insensitive and
//! associative, and the lock-free registry must count exactly under
//! multi-threaded hammering.

use eyeriss::prelude::*;
use eyeriss::telemetry::{
    HistogramSnapshot, RetroSpan, TraceContext, EXACT_BELOW, RELATIVE_ERROR, REQUEST_ROW_TID,
};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Asserts `approx` is within the histogram's documented bound of the
/// exact quantile: exact for values below [`EXACT_BELOW`], within
/// [`RELATIVE_ERROR`] relative error above it.
fn assert_within_bound(approx: u64, exact: u64, q: f64) {
    if exact < EXACT_BELOW {
        assert_eq!(approx, exact, "q={q}: sub-{EXACT_BELOW} values are exact");
    } else {
        let err = (approx as f64 - exact as f64).abs() / exact as f64;
        assert!(
            err <= RELATIVE_ERROR,
            "q={q}: approx {approx} vs exact {exact} (relative error {err:.4} > {RELATIVE_ERROR})"
        );
    }
}

fn record_all(samples: &[u64]) -> HistogramSnapshot {
    let tele = Telemetry::new_enabled();
    let h = tele.histogram("test.samples");
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// p50/p99 from the streaming histogram against the exact
    /// nearest-rank percentile over the same samples.
    #[test]
    fn bucketed_quantiles_match_exact_nearest_rank(
        samples in proptest::collection::vec(0u64..5_000_000, 1..200),
        qi in 0usize..3,
    ) {
        let q = [0.5, 0.9, 0.99][qi];
        let snap = record_all(&samples);
        let durations: Vec<Duration> =
            samples.iter().map(|&v| Duration::from_nanos(v)).collect();
        let exact = eyeriss::serve::percentile(&durations, q).as_nanos() as u64;
        let approx = snap.quantile(q).expect("non-empty histogram");
        assert_within_bound(approx, exact, q);
    }

    /// Merging snapshots is associative and order-insensitive: any
    /// grouping of per-shard snapshots equals one histogram fed every
    /// sample, bucket for bucket.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..1_000_000, 0..60),
        b in proptest::collection::vec(0u64..1_000_000, 0..60),
        c in proptest::collection::vec(0u64..1_000_000, 0..60),
    ) {
        let (sa, sb, sc) = (record_all(&a), record_all(&b), record_all(&c));

        let mut ab_c = sa.clone();
        ab_c.merge(&sb);
        ab_c.merge(&sc);

        let mut a_bc = sc.clone();
        a_bc.merge(&sb);
        a_bc.merge(&sa);

        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = record_all(&all);

        assert_eq!(ab_c, direct, "(a+b)+c must equal one-shot recording");
        assert_eq!(a_bc, direct, "(c+b)+a must equal one-shot recording");
        assert_eq!(direct.count(), all.len() as u64);
    }

    /// Span-ring wraparound under concurrent writers: the
    /// overwrite-oldest ring must never tear a record (every retained
    /// span's writer/tid/trace fields stay mutually consistent), span
    /// ids stay unique and non-zero, and parent links either resolve to
    /// the *actual* parent or are explicitly orphaned — a parent id
    /// must never dangle into a slot reused by an unrelated span.
    #[test]
    fn span_ring_wraparound_keeps_parent_links_sound(
        capacity in 8usize..96,
        writers in 2usize..5,
        iters in 16usize..64,
    ) {
        let tele = Telemetry::new_enabled();
        tele.set_span_capacity(capacity);
        std::thread::scope(|scope| {
            for w in 0..writers {
                let tele = tele.clone();
                scope.spawn(move || {
                    let ctx = tele.mint_trace();
                    let _g = tele.in_context(ctx);
                    let mut first_outer = 0;
                    for i in 0..iters {
                        let arg = ((w as u64) << 32) | i as u64;
                        let outer = tele.span_with("prop.outer", "prop", arg);
                        if i == 0 {
                            first_outer = outer.id();
                        }
                        let _inner = tele.span_with("prop.inner", "prop", arg);
                    }
                    // A late span pointing back at this writer's first
                    // outer span, which heavy wraparound has usually
                    // overwritten by now: its parent must resolve to
                    // exactly that span or to nothing at all.
                    tele.record_retro(RetroSpan {
                        name: "prop.late",
                        cat: "prop",
                        arg: (w as u64) << 32,
                        tid: REQUEST_ROW_TID,
                        ctx: TraceContext { trace: ctx.trace, parent: first_outer },
                        start: Instant::now(),
                        dur: Duration::ZERO,
                        link: 0,
                    });
                });
            }
        });

        let spans = tele.snapshot().spans;
        let total = writers * (2 * iters + 1);
        prop_assert_eq!(spans.len(), total.min(capacity), "ring keeps the newest records");

        // Ids are unique and never zero.
        let mut ids = HashSet::new();
        for s in &spans {
            prop_assert!(s.id != 0);
            prop_assert!(ids.insert(s.id), "span id {} reused", s.id);
        }
        let by_id: HashMap<u64, &_> = spans.iter().map(|s| (s.id, s)).collect();

        // No torn records: each retained span belongs wholly to one
        // writer — its (writer, tid) and (writer, trace) pairings are
        // globally consistent.
        let mut tid_of: HashMap<u64, u64> = HashMap::new();
        let mut trace_of: HashMap<u64, u64> = HashMap::new();
        for s in &spans {
            let w = s.arg >> 32;
            prop_assert!((w as usize) < writers);
            prop_assert!(s.trace != 0);
            prop_assert_eq!(*trace_of.entry(w).or_insert(s.trace), s.trace);
            if s.name != "prop.late" {
                prop_assert_eq!(*tid_of.entry(w).or_insert(s.tid), s.tid);
            }
        }
        prop_assert_eq!(
            trace_of.values().collect::<HashSet<_>>().len(),
            trace_of.len(),
            "each writer minted a distinct trace"
        );

        // Parent links resolve to the true parent or are orphaned.
        for s in &spans {
            match s.name {
                "prop.outer" => prop_assert_eq!(s.parent, 0, "outer spans are roots"),
                "prop.inner" | "prop.late" => {
                    prop_assert!(s.parent != 0, "{} spans are parented", s.name);
                    let Some(p) = by_id.get(&s.parent) else {
                        continue; // explicitly orphaned: parent overwritten
                    };
                    prop_assert_eq!(p.name, "prop.outer");
                    prop_assert_eq!(p.trace, s.trace);
                    if s.name == "prop.inner" {
                        // The resolved parent is this very iteration's
                        // outer span, and it encloses the child (small
                        // slack for independent ns truncation).
                        prop_assert_eq!(p.arg, s.arg);
                        prop_assert_eq!(p.tid, s.tid);
                        prop_assert!(p.start_ns <= s.start_ns);
                        prop_assert!(p.start_ns + p.dur_ns + 2 >= s.start_ns + s.dur_ns);
                    } else {
                        prop_assert_eq!(p.arg, s.arg, "late span resolves to iteration 0");
                    }
                }
                other => prop_assert!(false, "unexpected span {other}"),
            }
        }
    }
}

/// Counters and gauges resolved from many threads against one registry
/// must land every increment exactly once.
#[test]
fn registry_counts_exactly_under_contention() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    let tele = Telemetry::new_enabled();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let tele = tele.clone();
            scope.spawn(move || {
                // Re-resolve handles mid-run: resolution must dedupe
                // onto the same underlying atomics.
                let counter = tele.counter("hammer.count");
                let gauge = tele.gauge("hammer.level");
                let hist = tele.histogram("hammer.dist");
                for i in 0..PER_THREAD {
                    counter.inc();
                    gauge.inc();
                    hist.record(t * PER_THREAD + i);
                    if i % 1024 == 0 {
                        let again = tele.counter("hammer.count");
                        again.add(0);
                    }
                }
                for _ in 0..PER_THREAD {
                    gauge.dec();
                }
            });
        }
    });
    let snap = tele.snapshot();
    assert_eq!(snap.counter("hammer.count"), Some(THREADS * PER_THREAD));
    assert_eq!(snap.gauge("hammer.level"), Some(0));
    let dist = snap.histogram("hammer.dist").expect("histogram registered");
    assert_eq!(dist.count(), THREADS * PER_THREAD);
    let max = dist.quantile(1.0).expect("non-empty");
    let exact_max = THREADS * PER_THREAD - 1;
    assert_within_bound(max, exact_max, 1.0);
}
