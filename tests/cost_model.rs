//! Acceptance tests of the open cost layer:
//!
//! 1. Proptests that [`CostReport`] totals under the canonical
//!    [`TableIv`] model are **bit-identical** to the pre-redesign
//!    per-crate pricing paths (`LayerAccessProfile::total_energy`,
//!    `energy_at_level`, `energy_of_type` under
//!    `EnergyModel::table_iv()`), on arbitrary profiles and on real
//!    searched mappings.
//! 2. Plan-cache keys carry the pricing model's fingerprint: compilers
//!    under models with distinct fingerprints never share cache entries.

use eyeriss::arch::{AccessCounts, LayerAccessProfile};
use eyeriss::prelude::*;
use eyeriss::Objective;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_counts() -> impl Strategy<Value = AccessCounts> {
    let f = 0.0..1e12f64;
    (
        f.clone(),
        f.clone(),
        f.clone(),
        f.clone(),
        f.clone(),
        f.clone(),
        f,
    )
        .prop_map(|(dr, dw, br, bw, hops, rr, rw)| AccessCounts {
            dram_reads: dr,
            dram_writes: dw,
            buffer_reads: br,
            buffer_writes: bw,
            array_hops: hops,
            rf_reads: rr,
            rf_writes: rw,
        })
}

fn arb_profile() -> impl Strategy<Value = LayerAccessProfile> {
    (arb_counts(), arb_counts(), arb_counts(), 0.0..1e12f64).prop_map(
        |(ifmap, filter, psum, alu)| {
            let mut p = LayerAccessProfile::new();
            p.ifmap = ifmap;
            p.filter = filter;
            p.psum = psum;
            p.alu_ops = alu;
            p
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On arbitrary profiles, every energy figure the unified report
    /// produces under TableIv equals the old EnergyModel path bit for
    /// bit — totals, per-level stacks, per-data-type stacks.
    #[test]
    fn table_iv_reports_are_bit_identical_to_the_energy_model_path(
        profile in arb_profile(),
        active_pes in 1usize..1024,
    ) {
        let em = EnergyModel::table_iv();
        let report = TableIv.report(&profile, active_pes);
        prop_assert_eq!(
            report.total_energy.to_bits(),
            profile.total_energy(&em).to_bits(),
            "total energy"
        );
        prop_assert_eq!(
            TableIv.energy_of(&profile).to_bits(),
            profile.total_energy(&em).to_bits(),
            "energy_of"
        );
        for level in Level::ALL {
            prop_assert_eq!(
                report.energy_at(level).to_bits(),
                profile.energy_at_level(&em, level).to_bits(),
                "level {}", level
            );
        }
        for ty in DataType::ALL {
            prop_assert_eq!(
                report.energy_of(ty).to_bits(),
                profile.energy_of_type(&em, ty).to_bits(),
                "type {}", ty.label()
            );
        }
        // The canonical model is latency-transparent: the analytic delay
        // is exactly the Section VII-B compute proxy.
        prop_assert_eq!(report.delay, profile.alu_ops / active_pes as f64);
    }

    /// On real searched mappings (all six dataflows), the trait-priced
    /// winner and its report agree bit-exactly with the old path, and
    /// the cluster planner's recorded energy equals the old per-tile
    /// summation.
    #[test]
    fn searched_mappings_price_identically(
        m in 2usize..10,
        c in 1usize..5,
        n in 1usize..4,
    ) {
        let em = EnergyModel::table_iv();
        let shape = LayerShape::conv(m, c, 13, 3, 2).expect("valid");
        let problem = LayerProblem::new(shape, n);
        for df in DataflowRegistry::builtin().iter() {
            let hw = df.comparison_hardware(256);
            let Some(best) = optimize(df.as_ref(), &problem, &hw, &TableIv, Objective::Energy)
            else {
                continue;
            };
            prop_assert_eq!(
                TableIv.energy_of(&best.profile).to_bits(),
                best.profile.total_energy(&em).to_bits(),
                "{} winner", df.id()
            );
            prop_assert_eq!(
                best.profile.total_energy(&em).to_bits(),
                TableIv.report(&best.profile, best.active_pes).total_energy.to_bits(),
                "{} report", df.id()
            );
        }
        // Cluster planning: the plan's energy is the old per-tile sum.
        let hw = AcceleratorConfig::eyeriss_chip();
        if let Some(plan) = plan_layer(
            registry::builtin(DataflowKind::RowStationary),
            &problem,
            2,
            &hw,
            &TableIv,
            &SharedDram::scaled(2),
            Objective::EnergyDelayProduct,
        ) {
            let old_sum: f64 = plan
                .per_array
                .iter()
                .map(|a| {
                    a.tiles
                        .iter()
                        .map(|t| t.mapping.profile.total_energy(&em))
                        .sum::<f64>()
                })
                .sum();
            prop_assert_eq!(plan.energy.to_bits(), old_sum.to_bits());
            prop_assert_eq!(plan.cost, TableIv.descriptor());
        }
    }
}

/// Compilers priced under models with distinct fingerprints — even two
/// sharing one label — never share plan-cache entries; equal
/// fingerprints under one label do.
#[test]
fn distinct_fingerprints_never_cross_hit_the_cache() {
    let hw = AcceleratorConfig {
        grid: GridDims::new(6, 8),
        rf_bytes_per_pe: 512.0,
        buffer_bytes: 32.0 * 1024.0,
    };
    let shape = LayerShape::conv(8, 3, 13, 3, 2).unwrap();
    let cache = Arc::new(PlanCache::new());

    let a: Arc<dyn CostModel> = Arc::new(StaticCostModel::new("scenario", EnergyModel::table_iv()));
    let b: Arc<dyn CostModel> = Arc::new(StaticCostModel::new(
        "scenario",
        EnergyModel::new(400.0, 6.0, 2.0, 1.0, 1.0).unwrap(),
    ));
    let a_again: Arc<dyn CostModel> =
        Arc::new(StaticCostModel::new("scenario", EnergyModel::table_iv()));

    for cost in [&a, &b] {
        PlanCompiler::new(2, hw)
            .with_cost_model(Arc::clone(cost))
            .with_cache(Arc::clone(&cache))
            .compile_layer(&shape, 2)
            .unwrap();
    }
    assert_eq!(cache.len(), 2, "distinct fingerprints → distinct entries");
    assert_eq!(cache.stats().hits, 0, "no cross-hits");

    PlanCompiler::new(2, hw)
        .with_cost_model(a_again)
        .with_cache(Arc::clone(&cache))
        .compile_layer(&shape, 2)
        .unwrap();
    assert_eq!(cache.len(), 2, "equal fingerprint re-uses the entry");
    assert_eq!(cache.stats().hits, 1, "identical model hits");
}

/// The typed construction error of the paper's hierarchy invariant
/// (Section II): callers get a `Result`, never a panic.
#[test]
fn unordered_cost_tables_are_typed_errors() {
    assert!(matches!(
        EnergyModel::new(1.0, 6.0, 2.0, 1.0, 1.0),
        Err(CostModelError::UnorderedHierarchy { .. })
    ));
    assert!(matches!(
        EnergyModel::new(200.0, 6.0, 2.0, -1.0, 1.0),
        Err(CostModelError::InvalidCost { .. })
    ));
    let em = EnergyModel::new(200.0, 6.0, 2.0, 1.0, 1.0).unwrap();
    assert_eq!(em, EnergyModel::table_iv());
}
