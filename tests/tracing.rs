//! Acceptance tests for request-scoped tracing: a served request must
//! yield a causally-linked span tree (queue → batch → per-array →
//! simulator), exportable as a Chrome trace with flow events, plus a
//! per-request attribution record whose energies are bit-exact against
//! the executed plan's cost report.

use eyeriss::arch::{DataType, Level};
use eyeriss::prelude::*;
use eyeriss::serve::{BatchPolicy, PlanCompiler, RecoveryPolicy, ServeConfig, Server};
use eyeriss::telemetry::REQUEST_ROW_TID;
use std::collections::HashSet;
use std::time::Duration;

fn traced_config(tele: &Telemetry) -> ServeConfig {
    ServeConfig {
        arrays: 2,
        workers: 1,
        policy: BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
        },
        queue_capacity: 16,
        hw: AcceleratorConfig::eyeriss_chip(),
        telemetry: Some(tele.clone()),
        slos: Vec::new(),
        flight_capacity: 16,
        sched: None,
        faults: None,
        abft: false,
        recovery: RecoveryPolicy::new(),
    }
}

/// One request through a telemetry-enabled server produces the full
/// causal tree: a `serve.queue` retro-span on the synthetic requests
/// row flowing into the `serve.batch` span, `cluster.execute` under the
/// batch, `cluster.array` under the execute (across the thread-pool
/// hop), and the simulator's `sim.layer` spans under their arrays — all
/// stamped with the trace id minted at submission.
#[test]
fn served_request_yields_a_causally_linked_span_tree() {
    let tele = Telemetry::new_enabled();
    let net = eyeriss::analysis::experiments::serving::synthetic_net();
    let shape = net.stages()[0].shape;
    let cfg = traced_config(&tele);
    let compiler = PlanCompiler::new(cfg.arrays, cfg.hw);
    let server = Server::start_with_compiler(net, cfg, compiler);
    server.prewarm().expect("synthetic network plans");

    let handle = server.submit(synth::ifmap(&shape, 1, 5)).unwrap();
    let trace = handle.trace_id();
    assert_ne!(trace, 0, "enabled telemetry mints a trace at submission");
    let response = handle.wait().unwrap();

    let snap = tele.snapshot();
    let spans: Vec<_> = snap.spans.iter().filter(|s| s.trace == trace).collect();

    let batch = spans
        .iter()
        .find(|s| s.name == "serve.batch")
        .expect("batch span carries the request's trace");
    assert_eq!(batch.parent, 0, "the batch is the trace root");

    // The request's time-in-queue is a retro-span on the synthetic
    // "requests" row, flowing into the batch that dispatched it.
    let queue = spans
        .iter()
        .find(|s| s.name == "serve.queue")
        .expect("queue span");
    assert_eq!(queue.tid, REQUEST_ROW_TID);
    assert_eq!(queue.arg, response.id);
    assert_eq!(queue.link, batch.id, "queue flows into its batch");

    let execs: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "cluster.execute")
        .collect();
    assert!(!execs.is_empty(), "weighted stages execute on the cluster");
    assert!(
        execs.iter().all(|s| s.parent == batch.id),
        "cluster.execute parents under serve.batch"
    );

    let exec_ids: HashSet<u64> = execs.iter().map(|s| s.id).collect();
    let arrays: Vec<_> = spans.iter().filter(|s| s.name == "cluster.array").collect();
    assert!(!arrays.is_empty());
    assert!(
        arrays.iter().all(|s| exec_ids.contains(&s.parent)),
        "cluster.array parents under cluster.execute across the pool-thread hop"
    );

    let array_ids: HashSet<u64> = arrays.iter().map(|s| s.id).collect();
    let layers: Vec<_> = spans.iter().filter(|s| s.name == "sim.layer").collect();
    assert!(!layers.is_empty());
    assert!(
        layers.iter().all(|s| array_ids.contains(&s.parent)),
        "sim.layer parents under its array"
    );

    // The pool stage runs on the worker itself, directly under the batch.
    let pools: Vec<_> = spans.iter().filter(|s| s.name == "sim.pool").collect();
    assert!(!pools.is_empty(), "the synthetic net has a pool stage");
    assert!(pools.iter().all(|s| s.parent == batch.id));

    // Every span id is unique and non-zero: parent links can never
    // alias a reused slot.
    let mut ids = HashSet::new();
    for s in &snap.spans {
        assert_ne!(s.id, 0);
        assert!(ids.insert(s.id), "span ids are never reused");
    }

    // The Chrome export carries the tree: metadata rows, the trace id
    // on every X event, and s/f flow arrows (queue → batch at minimum).
    let chrome = snap.chrome_trace();
    assert!(chrome.contains("\"ph\":\"M\""));
    assert!(chrome.contains("\"name\":\"requests\""));
    assert!(chrome.contains("\"ph\":\"s\""));
    assert!(chrome.contains("\"ph\":\"f\""));
    assert!(chrome.contains(&format!("\"trace\":{trace}")));

    server.shutdown();
}

/// The per-request attribution record prices the request off the
/// executed plan **bit-exactly**: every per-level and per-datatype
/// energy equals the plan's own cost report, the analytic delay equals
/// the plan's, and the measured-vs-predicted residual lands in the
/// server's `serve.delay_residual` histogram.
#[test]
fn attribution_matches_the_plan_cost_report_bit_exactly() {
    let tele = Telemetry::new_enabled();
    let net = eyeriss::analysis::experiments::serving::synthetic_net();
    let shape = net.stages()[0].shape;
    let cfg = traced_config(&tele);
    let compiler = PlanCompiler::new(cfg.arrays, cfg.hw);
    let server = Server::start_with_compiler(net.clone(), cfg, compiler.clone());
    server.prewarm().expect("synthetic network plans");

    let handle = server.submit(synth::ifmap(&shape, 1, 9)).unwrap();
    let trace = handle.trace_id();
    let response = handle.wait().unwrap();
    let att = response
        .attribution
        .expect("telemetry-enabled servers attribute every request");

    assert_eq!(att.id, response.id);
    assert_eq!(att.trace, trace);
    assert_eq!(att.batch_size, response.batch_size);
    assert_eq!(att.latency, response.latency);
    assert!(att.completed_ns > att.submitted_ns);

    // Recompile through the shared cache: the server executed exactly
    // this plan, and its report must match bit for bit.
    let plan = compiler
        .compile_network(&net, att.batch_size)
        .expect("plan for the executed batch size");
    let want = plan.cost_report(compiler.cost_model().as_ref());
    for level in Level::ALL {
        assert_eq!(
            att.report.energy_at(level).to_bits(),
            want.energy_at(level).to_bits(),
            "energy at {level:?} must be bit-exact"
        );
    }
    for ty in DataType::ALL {
        assert_eq!(
            att.report.energy_of(ty).to_bits(),
            want.energy_of(ty).to_bits(),
            "energy of {ty:?} must be bit-exact"
        );
    }
    assert_eq!(att.report.alu_energy.to_bits(), want.alu_energy.to_bits());
    assert_eq!(
        att.report.total_energy.to_bits(),
        want.total_energy.to_bits()
    );
    assert_eq!(
        att.analytic_delay.to_bits(),
        plan.analytic_delay().to_bits()
    );

    // The residual is real: the simulator measured cycles, and the
    // server histogrammed the |error| as serve.delay_residual.
    assert!(att.measured_cycles > 0);
    let live = server.snapshot();
    assert!(
        live.delay_residual.count() >= 1,
        "residual histogram populated"
    );

    server.shutdown();
}
