//! Acceptance tests for the `eyeriss-serve` runtime: plan-cache reuse on
//! VGG, bit-exactness of batched execution against per-request
//! single-array simulation, and the offered-load latency/throughput
//! sweep.

use eyeriss::analysis::experiments::serving;
use eyeriss::nn::network::NetworkBuilder;
use eyeriss::nn::vgg;
use eyeriss::prelude::*;
use eyeriss::serve::{BatchPolicy, PlanCompiler, RecoveryPolicy, ServeConfig, Server};
use eyeriss::sim::runner::run_network;
use std::time::Duration;

/// (a) Repeated VGG shapes compile once: the plan cache's hit rate is
/// strictly positive and the distinct-shape count matches the network.
#[test]
fn vgg_plan_cache_hit_rate_is_positive() {
    let compiler = PlanCompiler::new(2, AcceleratorConfig::eyeriss_chip());
    let plans = compiler.compile_layers(&vgg::conv_layers(), 1).unwrap();
    assert_eq!(plans.len(), 13);
    let stats = compiler.cache().stats();
    assert!(
        stats.hit_rate() > 0.0,
        "VGG repeats shapes; hit rate was {}",
        stats.hit_rate()
    );
    assert_eq!(
        stats.misses, 9,
        "VGG-16 has nine distinct CONV shapes; each must be searched once"
    );
    assert_eq!(stats.hits, 4, "the four repeated shapes ride the cache");
    // Identical layers received literally the same immutable plan.
    let conv3_2 = &plans[5]; // CONV3_2 and CONV3_3 share a shape
    let conv3_3 = &plans[6];
    assert!(std::sync::Arc::ptr_eq(&conv3_2.1, &conv3_3.1));
}

/// (b) Batched execution through the server is bit-exact against a
/// per-request single-array simulation of the same inputs.
#[test]
fn batched_execution_matches_single_array_simulation() {
    let net = NetworkBuilder::new(3, 19)
        .conv("C1", 8, 3, 2)
        .unwrap()
        .pool("P1", 3, 2)
        .unwrap()
        .conv("C2", 12, 3, 1)
        .unwrap()
        .fully_connected("FC", 10)
        .unwrap()
        .build(7);
    let shape = net.stages()[0].shape;
    let single_array_net = net.clone();

    let cfg = ServeConfig {
        arrays: 2,
        workers: 1,
        policy: BatchPolicy {
            max_batch: 4,
            // Generous wait so all four requests coalesce into one batch.
            max_wait: Duration::from_millis(2000),
        },
        queue_capacity: 16,
        hw: AcceleratorConfig::eyeriss_chip(),
        telemetry: None,
        slos: Vec::new(),
        flight_capacity: 256,
        sched: None,
        faults: None,
        abft: false,
        recovery: RecoveryPolicy::new(),
    };
    let server = Server::start(net, cfg);
    let inputs: Vec<Tensor4<Fix16>> = (0..4).map(|i| synth::ifmap(&shape, 1, 40 + i)).collect();
    let handles: Vec<_> = inputs
        .iter()
        .map(|input| server.submit(input.clone()).unwrap())
        .collect();

    let mut max_batch_seen = 0;
    for (input, handle) in inputs.iter().zip(handles) {
        let response = handle.wait().unwrap();
        // The per-request golden run: one request, one array, no batching.
        let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
        let golden = run_network(&mut chip, &single_array_net, 1, input).unwrap();
        assert_eq!(
            response.output, golden.output,
            "batched serving diverged from the single-array simulator"
        );
        max_batch_seen = max_batch_seen.max(response.batch_size);
    }
    assert!(
        max_batch_seen >= 2,
        "requests submitted together must actually coalesce (saw max batch {max_batch_seen})"
    );
    let stats = server.shutdown();
    assert_eq!(stats.completed(), 4);
}

/// (c) The offered-load sweep reports non-collapsing throughput up to
/// saturation, with p50/p99 latency recorded at every point.
#[test]
fn offered_load_sweep_is_monotone_with_latency_percentiles() {
    let sweep = serving::sweep_synthetic();
    assert!(sweep.capacity_rps > 0.0);
    assert_eq!(sweep.points.len(), 5);
    for point in &sweep.points {
        assert!(point.completed > 0, "every load point must complete");
        assert!(point.achieved_rps > 0.0);
        assert!(point.p50 > Duration::ZERO, "p50 must be recorded");
        assert!(point.p99 >= point.p50, "p99 must dominate p50");
    }
    assert!(
        // Generous tolerance: saturated points should be ~equal, but this
        // is wall-clock on a possibly noisy runner.
        sweep.throughput_is_monotone(0.25),
        "throughput must be non-decreasing up to saturation: {:?}",
        sweep
            .points
            .iter()
            .map(|p| p.achieved_rps)
            .collect::<Vec<_>>()
    );
    // Past saturation the queue grows: the heaviest load's p99 must not
    // be cheaper than the lightest load's p50.
    let first = &sweep.points[0];
    let last = sweep.points.last().unwrap();
    assert!(last.p99 >= first.p50);
    // Render for a human, too.
    let rendered = serving::render_sweep(&sweep);
    assert!(rendered.contains("p99") || rendered.contains("achieved"));
}
