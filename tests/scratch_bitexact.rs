//! Scratch-reuse bit-exactness: the allocation-free execution core must
//! be invisible in the results.
//!
//! The simulator reuses PE pools, psum strips and RLC buffers across
//! passes, layers and runs ([`eyeriss_sim::SimScratch`]), memoizes
//! winning mappings per chip, and the cluster executes precompiled
//! plans' mappings directly. None of that may change a single psum bit
//! *or* a single statistic relative to the reference discipline — a
//! fresh accelerator (fresh buffers, fresh search) per run.

use eyeriss::prelude::*;
use eyeriss::Engine;
use eyeriss_cluster::{plan_layer, Cluster, SharedDram};
use eyeriss_dataflow::registry::builtin;
use eyeriss_sim::SimScratch;
use proptest::prelude::*;

fn small_chip() -> AcceleratorConfig {
    AcceleratorConfig {
        grid: eyeriss_arch::GridDims::new(6, 8),
        rf_bytes_per_pe: 512.0,
        buffer_bytes: 32.0 * 1024.0,
    }
}

/// One randomized layer: (M, C, H, R, U) kept small enough that the
/// 6x8-PE test chip maps every draw.
fn layer_strategy() -> impl Strategy<Value = (LayerShape, usize)> {
    (1usize..8, 1usize..6, 1usize..4, 0usize..2, 1usize..4).prop_map(|(m, c, r2, u1, n)| {
        let r = r2 + 1; // 2..=4
        let u = u1 + 1; // 1..=2
        let e = 3 + m % 5; // 3..=7 ofmap size
        let h = (e - 1) * u + r;
        (LayerShape::conv(m, c, h, r, u).unwrap(), n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Back-to-back runs on one reused scratch (and one reused chip,
    /// whose mapping memo also kicks in) are bit-exact — psums *and*
    /// stats — against a fresh accelerator per run, across randomized
    /// layer shapes and repeated executions.
    #[test]
    fn scratch_reuse_is_bit_exact(layer_a in layer_strategy(),
                                  layer_b in layer_strategy(),
                                  sparse in 0u8..2) {
        let ((shape_a, n_a), (shape_b, n_b)) = (layer_a, layer_b);
        let mut scratch = SimScratch::new();
        let mut reused = Accelerator::new(small_chip());
        for (shape, n) in [(shape_a, n_a), (shape_b, n_b), (shape_a, n_a)] {
            let input = if sparse == 1 {
                synth::sparse_ifmap(&shape, n, 7, 0.6)
            } else {
                synth::ifmap(&shape, n, 7)
            };
            let weights = synth::filters(&shape, 8);
            let bias = synth::biases(&shape, 9);

            // Reference discipline: everything fresh.
            let mut fresh = Accelerator::new(small_chip());
            let want = fresh.run_conv(&shape, n, &input, &weights, &bias).unwrap();
            prop_assert_eq!(
                &want.psums,
                &reference::conv_accumulate(&shape, n, &input, &weights, &bias)
            );

            // Reused chip-internal scratch.
            let got = reused.run_conv(&shape, n, &input, &weights, &bias).unwrap();
            prop_assert_eq!(&got.psums, &want.psums);
            prop_assert_eq!(&got.stats, &want.stats);
            prop_assert_eq!(got.mapping, want.mapping);

            // Explicit scratch shared across shapes and accelerators.
            let mut other = Accelerator::new(small_chip());
            let via_scratch = other
                .run_conv_with(&mut scratch, &shape, n, &input, &weights, &bias)
                .unwrap();
            prop_assert_eq!(&via_scratch.psums, &want.psums);
            prop_assert_eq!(&via_scratch.stats, &want.stats);
        }
    }

    /// The sparsity features (zero-gating + RLC, whose encoder now
    /// streams through the scratch) survive reuse bit-exactly.
    #[test]
    fn sparse_features_survive_scratch_reuse(layer in layer_strategy()) {
        let (shape, n) = layer;
        let input = synth::sparse_ifmap(&shape, n, 5, 0.7);
        let weights = synth::filters(&shape, 6);
        let bias = synth::biases(&shape, 7);

        let mut fresh = Accelerator::new(small_chip()).zero_gating(true).rlc(true);
        let want = fresh.run_conv(&shape, n, &input, &weights, &bias).unwrap();

        let mut reused = Accelerator::new(small_chip()).zero_gating(true).rlc(true);
        let mut scratch = SimScratch::new();
        for _ in 0..3 {
            let got = reused
                .run_conv_with(&mut scratch, &shape, n, &input, &weights, &bias)
                .unwrap();
            prop_assert_eq!(&got.psums, &want.psums);
            prop_assert_eq!(&got.stats, &want.stats);
        }
    }
}

/// Plans compiled in each of the six builtin mapping spaces execute
/// bit-exactly through the cluster's planned path: row-stationary plans
/// run their own winning mappings directly, the other five fall back to
/// the executor's internal search — either way the reassembled psums
/// match the golden reference, and repeated executions (pooled worker
/// contexts) stay identical.
#[test]
fn all_six_dataflow_plans_execute_bit_exactly() {
    let shape = LayerShape::conv(8, 3, 13, 3, 2).unwrap();
    let n = 4usize;
    let problem = LayerProblem::new(shape, n);
    let hw = small_chip();
    let input = synth::ifmap(&shape, n, 21);
    let weights = synth::filters(&shape, 22);
    let bias = synth::biases(&shape, 23);
    let golden = reference::conv_accumulate(&shape, n, &input, &weights, &bias);

    for kind in DataflowKind::ALL {
        let df = builtin(kind);
        let Some(plan) = plan_layer(
            df,
            &problem,
            2,
            &hw,
            &TableIv,
            &SharedDram::scaled(2),
            Objective::EnergyDelayProduct,
        ) else {
            continue; // space infeasible on this chip; nothing to execute
        };
        let cluster = Cluster::new(2, hw);
        let first = cluster
            .execute(&plan, &problem, &input, &weights, &bias)
            .unwrap();
        assert_eq!(first.psums, golden, "{kind} plan diverged");
        // Re-execution through the (now warmed) pooled contexts.
        let again = cluster
            .execute(&plan, &problem, &input, &weights, &bias)
            .unwrap();
        assert_eq!(again.psums, golden, "{kind} re-run diverged");
        assert_eq!(
            again.stats.per_array.len(),
            first.stats.per_array.len(),
            "{kind}"
        );
        for (a, b) in first.stats.per_array.iter().zip(&again.stats.per_array) {
            assert_eq!(a, b, "{kind} stats changed across pooled re-runs");
        }
    }
}

/// The engine façade's pooled simulate path matches a dedicated chip.
#[test]
fn engine_simulate_pooling_is_bit_exact() {
    let shape = LayerShape::conv(6, 4, 11, 3, 2).unwrap();
    let problem = LayerProblem::new(shape, 2);
    let input = synth::ifmap(&shape, 2, 31);
    let weights = synth::filters(&shape, 32);
    let bias = synth::biases(&shape, 33);

    let engine = Engine::builder()
        .hardware(small_chip())
        .build()
        .expect("engine builds");
    let mut chip = Accelerator::new(small_chip());
    let want = chip.run_conv(&shape, 2, &input, &weights, &bias).unwrap();
    for _ in 0..3 {
        let got = engine.simulate(&problem, &input, &weights, &bias).unwrap();
        assert_eq!(got.psums, want.psums);
        assert_eq!(got.stats, want.stats);
    }
}
