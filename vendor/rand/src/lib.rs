//! API-compatible subset of `rand` for offline builds.
//!
//! The workspace only needs seeded, reproducible, reasonably uniform
//! values (`StdRng::seed_from_u64` + `gen_range`/`gen_bool`), so this
//! stand-in backs [`rngs::StdRng`] with SplitMix64 — a tiny, well-mixed
//! generator — instead of the real crate's ChaCha12. Sequences therefore
//! differ from upstream `rand`, but every consumer in this workspace only
//! relies on determinism per seed, which holds.

use std::ops::{Range, RangeInclusive};

/// Core random-source trait (subset of `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // 53 uniform mantissa bits -> uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled from (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased sample in `[0, bound)` via Lemire-style rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($ty:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(bounded_u64(rng, span) as $wide) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (start as $wide).wrapping_add(bounded_u64(rng, span + 1) as $wide) as $ty
            }
        }
    )+};
}

impl_int_range!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64 under the
    /// hood; upstream `rand` uses ChaCha12, so sequences differ).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i16 = rng.gen_range(-128i16..=128);
            assert!((-128..=128).contains(&v));
            let u: usize = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let f: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6500..7500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for c in counts {
            assert!((1700..2300).contains(&c), "bucket {c}");
        }
    }
}
