//! Marker-trait stand-in for `serde`, for offline builds.
//!
//! Provides just enough surface for `use serde::{Deserialize, Serialize}`
//! plus the derive attributes to compile. The traits are inert markers;
//! the derives (re-exported from the sibling `serde_derive` stub) expand
//! to nothing. Swap this path dependency for the real crates.io `serde`
//! to get actual serialization support.

pub use serde_derive::{Deserialize, Serialize};

/// Inert marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Inert marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
