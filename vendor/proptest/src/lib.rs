//! API-compatible subset of `proptest` for offline builds.
//!
//! Implements the surface this workspace uses — the [`proptest!`] macro,
//! `prop_assert*` / `prop_assume!`, range/tuple/mapped strategies,
//! [`arbitrary::any`], [`array::uniform4`] and [`collection::vec`] — as
//! plain seeded random sampling. Unlike the real crate there is **no
//! shrinking** and no failure persistence: a failing case panics with the
//! sampled inputs' debug representation instead of a minimized one.
//! Sampling is deterministic per test (seeded from the test name), so
//! failures reproduce across runs.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values (subset of `proptest::strategy::Strategy`).
    ///
    /// Real proptest separates strategies from value trees to support
    /// shrinking; this stand-in samples values directly.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: Copy,
        Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: Copy,
        RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident => $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0 => 0, S1 => 1);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7);

    /// Strategy for a whole primitive type's range (see [`crate::arbitrary::any`]).
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    macro_rules! impl_any_int {
        ($($ty:ty),+ $(,)?) => {$(
            impl Strategy for Any<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(<$ty>::MIN..=<$ty>::MAX)
                }
            }
        )+};
    }

    impl_any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use std::marker::PhantomData;

    /// Strategy covering the full range of `T` (subset of `proptest::arbitrary::any`).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: super::strategy::Strategy,
    {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod array {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for `[S::Value; 4]` (subset of `proptest::array::uniform4`).
    pub fn uniform4<S: Strategy>(s: S) -> Uniform4<S> {
        Uniform4 { inner: s }
    }

    /// Strategy produced by [`uniform4`].
    pub struct Uniform4<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            [
                self.inner.sample(rng),
                self.inner.sample(rng),
                self.inner.sample(rng),
                self.inner.sample(rng),
            ]
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for a `Vec` with length drawn from `size` (subset of
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Per-block configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps the heavier
            // simulator-driven properties fast while still sweeping the
            // space (all workspace uses are either cheap or override this).
            Config { cases: 64 }
        }
    }

    /// Why a test case did not pass (subset of `TestCaseError`).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
        /// A `prop_assert*` failed; the test panics.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        /// True for [`TestCaseError::Reject`].
        pub fn is_rejection(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Result type each generated test case evaluates to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-test generator, seeded from the test's name so
    /// different properties explore different sequences but each run of
    /// the suite reproduces exactly.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests (subset of `proptest::proptest!`).
///
/// Supports the `#![proptest_config(...)]` header and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg(<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cfg.cases.saturating_mul(50).max(1000);
            while accepted < cfg.cases {
                if attempts >= max_attempts {
                    panic!(
                        "proptest '{}': too many rejections ({} accepted of {} wanted after {} attempts)",
                        stringify!($name), accepted, cfg.cases, attempts
                    );
                }
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let case: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match case {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(e) if e.is_rejection() => continue,
                    ::core::result::Result::Err(e) => panic!(
                        "proptest '{}' failed: {}\n(no shrinking in the offline stand-in; inputs above are as sampled)",
                        stringify!($name), e
                    ),
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case's inputs, causing a redraw.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_sample_in_bounds(x in 3usize..10, y in -5i16..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn tuples_and_map_compose(v in (1usize..4, 1usize..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..16).contains(&v));
        }

        #[test]
        fn assume_redraws(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn collections_respect_size(v in crate::collection::vec(0i16..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
        }

        #[test]
        fn arrays_sample_elementwise(a in crate::array::uniform4(1usize..5)) {
            prop_assert!(a.iter().all(|&e| (1..5).contains(&e)));
        }

        #[test]
        fn any_covers_type(x in any::<i16>()) {
            // Round-trips through i32 losslessly; exercises the Any strategy.
            prop_assert_eq!(i16::try_from(i32::from(x)), Ok(x));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for("t");
        let mut b = crate::test_runner::rng_for("t");
        let s = 0usize..1000;
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
