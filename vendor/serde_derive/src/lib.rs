//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace builds in an offline environment with no crates.io
//! access, so the real serde is unavailable. Nothing in the workspace
//! actually serializes values — the derives on config/enum types exist so
//! downstream users *could* serialize them — hence empty derive expansions
//! are sufficient and keep every `#[derive(Serialize, Deserialize)]` in
//! the source tree compiling unchanged.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
