//! API-compatible subset of `criterion` for offline builds.
//!
//! Each `bench_function` runs its routine `sample_size` times (after one
//! warm-up call), reports mean / min / max wall-clock time per iteration,
//! and derives element throughput when set. There is no statistical
//! analysis, outlier rejection or HTML report — swap the path dependency
//! for the real crates.io `criterion` to get those.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{name:<40} time: [{} {} {}]{rate}",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
    );
}

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be non-zero");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(name, &b.samples, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b);
        report(name, &b.samples, self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function (subset of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_function("in_group", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn durations_format_by_scale() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
